// Tests for the unified key-value store: one typed suite drives
// kv::Store over all seven placement backends (local DHT, global DHT,
// Consistent Hashing, HRW, jump, maglev, bounded-load CH) through
// identical scenarios - the store-level counterpart of the paper's
// comparison - plus DHT-specific coverage of the migration
// accounting.

#include "kv/store.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "dht/invariants.hpp"

namespace cobalt::kv {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Per-backend store factory with a comparable footprint (one vnode or
/// one 16-point set per node).
template <typename StoreT>
StoreT make_store(std::uint64_t seed);

template <>
KvStore make_store<KvStore>(std::uint64_t seed) {
  return KvStore({cfg(8, 8, seed), 1});
}

template <>
GlobalKvStore make_store<GlobalKvStore>(std::uint64_t seed) {
  return GlobalKvStore({cfg(8, 1, seed), 1});
}

template <>
ChKvStore make_store<ChKvStore>(std::uint64_t seed) {
  return ChKvStore({seed, 16});
}

template <>
HrwKvStore make_store<HrwKvStore>(std::uint64_t seed) {
  return HrwKvStore({seed, 12});
}

template <>
JumpKvStore make_store<JumpKvStore>(std::uint64_t seed) {
  return JumpKvStore({seed, 12});
}

template <>
MaglevKvStore make_store<MaglevKvStore>(std::uint64_t seed) {
  return MaglevKvStore({seed, 12});
}

template <>
BoundedChKvStore make_store<BoundedChKvStore>(std::uint64_t seed) {
  return BoundedChKvStore({seed, 16, 0.25, 12});
}

template <typename StoreT>
class StoreSuite : public ::testing::Test {};

using StoreTypes =
    ::testing::Types<KvStore, GlobalKvStore, ChKvStore, HrwKvStore,
                     JumpKvStore, MaglevKvStore, BoundedChKvStore>;
TYPED_TEST_SUITE(StoreSuite, StoreTypes);

TYPED_TEST(StoreSuite, PutGetEraseRoundTrip) {
  auto store = make_store<TypeParam>(1);
  store.add_node();
  EXPECT_TRUE(store.put("alpha", "1"));
  EXPECT_FALSE(store.put("alpha", "2"));  // overwrite
  EXPECT_TRUE(store.put("beta", "3"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("alpha"), "2");
  EXPECT_EQ(store.get("beta"), "3");
  EXPECT_EQ(store.get("gamma"), std::nullopt);
  EXPECT_TRUE(store.erase("alpha"));
  EXPECT_FALSE(store.erase("alpha"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get("alpha"), std::nullopt);
}

TYPED_TEST(StoreSuite, WritesRequireANode) {
  auto store = make_store<TypeParam>(2);
  EXPECT_THROW((void)store.put("k", "v"), InvalidArgument);
  EXPECT_EQ(store.get("k"), std::nullopt);
}

TYPED_TEST(StoreSuite, KeysSurviveGrowth) {
  auto store = make_store<TypeParam>(3);
  store.add_node();
  constexpr int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    store.put("key-" + std::to_string(i), "value-" + std::to_string(i));
  }
  for (int i = 0; i < 40; ++i) store.add_node();
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(store.get("key-" + std::to_string(i)),
              "value-" + std::to_string(i))
        << "key " << i;
  }
}

TYPED_TEST(StoreSuite, KeysSurviveRemovals) {
  auto store = make_store<TypeParam>(4);
  std::vector<placement::NodeId> nodes;
  for (int i = 0; i < 20; ++i) nodes.push_back(store.add_node());
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    store.put("k" + std::to_string(i), std::to_string(i));
  }
  // Remove up to 6 nodes; a backend may refuse some removals (the
  // local approach's honest boundary) - the node then simply stays.
  int removed = 0;
  for (std::size_t i = 0; i < nodes.size() && removed < 6; ++i) {
    if (store.remove_node(nodes[i])) ++removed;
  }
  EXPECT_GT(removed, 0);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_EQ(store.get("k" + std::to_string(i)), std::to_string(i));
  }
}

TYPED_TEST(StoreSuite, OwnerOfReturnsALiveNode) {
  auto store = make_store<TypeParam>(5);
  for (int n = 0; n < 4; ++n) store.add_node();
  for (int i = 0; i < 200; ++i) {
    const std::string key = "o" + std::to_string(i);
    store.put(key, "v");
    EXPECT_TRUE(store.backend().is_live(store.owner_of(key)));
  }
}

TYPED_TEST(StoreSuite, KeysPerNodeSumsToSizeAndTracksQuotas) {
  auto store = make_store<TypeParam>(6);
  for (int n = 0; n < 8; ++n) store.add_node();
  constexpr int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) store.put("d" + std::to_string(i), "v");
  const auto counts = store.keys_per_node();
  ASSERT_EQ(counts.size(), store.backend().node_slot_count());
  std::size_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, static_cast<std::size_t>(kKeys));
  // Observed shares approximate the backend's quotas.
  const auto quotas = store.backend().quotas();
  ASSERT_EQ(quotas.size(), counts.size());  // all nodes live
  for (std::size_t n = 0; n < counts.size(); ++n) {
    const double observed =
        static_cast<double>(counts[n]) / static_cast<double>(kKeys);
    EXPECT_NEAR(observed, quotas[n], 0.05) << "node " << n;
  }
}

TYPED_TEST(StoreSuite, ForEachVisitsEveryPairExactlyOnce) {
  auto store = make_store<TypeParam>(7);
  store.add_node();
  for (int i = 0; i < 300; ++i) {
    store.put("e" + std::to_string(i), std::to_string(i));
  }
  for (int i = 0; i < 6; ++i) store.add_node();
  std::map<std::string, std::string> seen;
  store.for_each([&](const std::string& k, const std::string& v) {
    EXPECT_TRUE(seen.emplace(k, v).second) << "duplicate " << k;
  });
  EXPECT_EQ(seen.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(seen.at("e" + std::to_string(i)), std::to_string(i));
  }
}

TYPED_TEST(StoreSuite, ForEachOnNodePartitionsTheIteration) {
  auto store = make_store<TypeParam>(8);
  const auto n0 = store.add_node();
  const auto n1 = store.add_node();
  for (int i = 0; i < 500; ++i) store.put("p" + std::to_string(i), "v");
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  store.for_each_on_node(n0, [&](const std::string&, const std::string&) {
    ++c0;
  });
  store.for_each_on_node(n1, [&](const std::string&, const std::string&) {
    ++c1;
  });
  EXPECT_EQ(c0 + c1, 500u);
  EXPECT_GT(c0, 0u);
  EXPECT_GT(c1, 0u);
  EXPECT_THROW(store.for_each_on_node(
                   99, [](const std::string&, const std::string&) {}),
               InvalidArgument);
}

TYPED_TEST(StoreSuite, KeysInRangeCountsByHashContainment) {
  auto store = make_store<TypeParam>(9);
  store.add_node();
  for (int i = 0; i < 1000; ++i) store.put("c" + std::to_string(i), "v");
  EXPECT_EQ(store.keys_in_range(0, HashSpace::kMaxIndex), 1000u);
  const HashIndex mid = HashIndex{1} << 63;
  EXPECT_EQ(store.keys_in_range(0, mid - 1) +
                store.keys_in_range(mid, HashSpace::kMaxIndex),
            1000u);
  // Roughly half on each side for a good hash.
  EXPECT_NEAR(static_cast<double>(store.keys_in_range(0, mid - 1)), 500.0,
              80.0);
}

TYPED_TEST(StoreSuite, ScanVisitsEveryPairOnceAndAgreesWithForEach) {
  auto store = make_store<TypeParam>(9);
  for (int n = 0; n < 3; ++n) store.add_node();
  for (int i = 0; i < 400; ++i) {
    store.put("r" + std::to_string(i), std::to_string(i));
  }
  std::map<std::string, std::string> scanned;
  store.scan(0, HashSpace::kMaxIndex,
             [&](const std::string& k, const std::string& v) {
               EXPECT_TRUE(scanned.emplace(k, v).second) << "duplicate " << k;
             });
  std::map<std::string, std::string> iterated;
  store.for_each([&](const std::string& k, const std::string& v) {
    iterated.emplace(k, v);
  });
  EXPECT_EQ(scanned, iterated);
  EXPECT_EQ(scanned.size(), store.size());
}

TYPED_TEST(StoreSuite, ScanSubrangesPartitionTheFullScanInOrder) {
  auto store = make_store<TypeParam>(9);
  for (int n = 0; n < 2; ++n) store.add_node();
  for (int i = 0; i < 600; ++i) store.put("q" + std::to_string(i), "v");

  std::vector<std::string> full;
  store.scan(0, HashSpace::kMaxIndex,
             [&](const std::string& k, const std::string&) {
               full.push_back(k);
             });

  // Quarter scans concatenate to exactly the full scan: same keys,
  // same (ascending-hash) order, nothing dropped or duplicated at the
  // range seams - and every sub-count matches the counting surface.
  std::vector<std::string> stitched;
  constexpr HashIndex kQuarter = HashIndex{1} << 62;
  for (int q = 0; q < 4; ++q) {
    const HashIndex lo = static_cast<HashIndex>(q) * kQuarter;
    const HashIndex hi =
        q == 3 ? HashSpace::kMaxIndex : (lo + kQuarter - 1);
    std::size_t count = 0;
    store.scan(lo, hi, [&](const std::string& k, const std::string&) {
      stitched.push_back(k);
      ++count;
    });
    EXPECT_EQ(count, store.keys_in_range(lo, hi)) << "quarter " << q;
  }
  EXPECT_EQ(stitched, full);
}

TYPED_TEST(StoreSuite, ScanSeesCurrentValuesAndSkipsErased) {
  auto store = make_store<TypeParam>(9);
  store.add_node();
  store.put("a", "1");
  store.put("b", "2");
  store.put("a", "updated");
  store.erase("b");
  std::map<std::string, std::string> seen;
  store.scan(0, HashSpace::kMaxIndex,
             [&](const std::string& k, const std::string& v) {
               seen.emplace(k, v);
             });
  const std::map<std::string, std::string> expected{{"a", "updated"}};
  EXPECT_EQ(seen, expected);
  // An inverted range is empty, not an error.
  store.scan(HashSpace::kMaxIndex, 0,
             [](const std::string&, const std::string&) { FAIL(); });
}

TYPED_TEST(StoreSuite, MovementAccountingMatchesOwnershipDiffOnJoin) {
  // The strongest property of the unified accounting: the keys the
  // relocation events charge for a join are exactly the keys whose
  // responsible node changed.
  auto store = make_store<TypeParam>(10);
  for (int n = 0; n < 4; ++n) store.add_node();
  constexpr int kKeys = 5000;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("m" + std::to_string(i));
    store.put(keys.back(), "v");
  }
  std::vector<placement::NodeId> owner_before;
  owner_before.reserve(keys.size());
  for (const auto& key : keys) owner_before.push_back(store.owner_of(key));

  const std::uint64_t across_before =
      store.migration_stats().keys_moved_across_nodes;
  store.add_node();

  std::uint64_t changed = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (store.owner_of(keys[i]) != owner_before[i]) ++changed;
  }
  EXPECT_EQ(store.migration_stats().keys_moved_across_nodes - across_before,
            changed);
  EXPECT_GT(changed, 0u);
}

TYPED_TEST(StoreSuite, FairShareMovementPerJoin) {
  // A join should move roughly K/N keys, not O(K).
  auto store = make_store<TypeParam>(11);
  store.add_node();
  constexpr std::uint64_t kKeys = 20000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    store.put("f" + std::to_string(i), "v");
  }
  for (int i = 0; i < 15; ++i) store.add_node();
  const std::uint64_t before =
      store.migration_stats().keys_moved_across_nodes;
  store.add_node();
  const std::uint64_t moved =
      store.migration_stats().keys_moved_across_nodes - before;
  // Fair share at N=17 is ~K/17 ~ 1176; allow generous slack.
  EXPECT_LT(moved, kKeys / 4);
  EXPECT_GT(moved, kKeys / 60);
}

TYPED_TEST(StoreSuite, DeterministicPerSeed) {
  const auto run_once = [] {
    auto store = make_store<TypeParam>(12);
    for (int n = 0; n < 6; ++n) store.add_node();
    for (int i = 0; i < 800; ++i) store.put("s" + std::to_string(i), "v");
    return store.keys_per_node();
  };
  EXPECT_EQ(run_once(), run_once());
}

// --- DHT-backend-specific coverage ----------------------------------

TEST(KvStore, IntraNodeVnodeHandoversAreNotCrossNodeTraffic) {
  KvStore store({cfg(8, 4, 21), 1});
  const auto n0 = store.add_node();
  for (int i = 0; i < 3000; ++i) store.put("m" + std::to_string(i), "x");
  EXPECT_EQ(store.migration_stats().keys_moved_total, 0u);

  // A second vnode on the same node: keys move between vnodes but not
  // across nodes.
  store.backend().add_vnode(n0);
  const auto after_same = store.migration_stats();
  EXPECT_GT(after_same.keys_moved_total, 0u);
  EXPECT_EQ(after_same.keys_moved_across_nodes, 0u);

  // A vnode on a new node: now cross-node movement happens.
  store.add_node();
  const auto after_cross = store.migration_stats();
  EXPECT_GT(after_cross.keys_moved_across_nodes, 0u);
  EXPECT_LE(after_cross.keys_moved_across_nodes,
            after_cross.keys_moved_total);
}

TEST(KvStore, SplitsRebucketWithoutMoving) {
  KvStore store({cfg(4, 4, 22), 1});
  store.add_node();
  for (int i = 0; i < 1000; ++i) store.put("r" + std::to_string(i), "v");
  const auto before = store.migration_stats();
  EXPECT_EQ(before.keys_rebucketed, 0u);
  // The second vnode forces one full split wave (V crosses 2^0).
  store.add_node();
  const auto after = store.migration_stats();
  EXPECT_GT(after.keys_rebucketed, 0u);
}

TEST(KvStore, BalancerInvariantsHoldUnderStoreElasticity) {
  KvStore store({cfg(8, 4, 23), 2});
  for (int n = 0; n < 12; ++n) store.add_node();
  for (int i = 0; i < 1000; ++i) store.put("i" + std::to_string(i), "v");
  for (int n = 0; n < 4; ++n) store.add_node();
  dht::check_invariants(store.backend().dht());
  EXPECT_EQ(store.size(), 1000u);
}

TEST(KvStore, HashAlgorithmIsConfigurable) {
  KvStore fnv({cfg(8, 4, 24), 1}, hashing::Algorithm::kFnv1a64);
  fnv.add_node();
  fnv.put("key", "value");
  EXPECT_EQ(fnv.get("key"), "value");
}

TEST(KvStore, CapacityProportionalJoins) {
  KvStore store({cfg(16, 16, 25), 4});
  const auto small = store.add_node(1.0);
  const auto big = store.add_node(4.0);
  EXPECT_EQ(store.backend().vnodes_of(small), 4u);
  EXPECT_EQ(store.backend().vnodes_of(big), 16u);
  constexpr int kKeys = 30000;
  for (int i = 0; i < kKeys; ++i) store.put("h" + std::to_string(i), "v");
  const auto counts = store.keys_per_node();
  const double big_share =
      static_cast<double>(counts[big]) / static_cast<double>(kKeys);
  EXPECT_NEAR(big_share, 0.8, 0.1);
}

}  // namespace
}  // namespace cobalt::kv
