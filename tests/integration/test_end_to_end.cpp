// Integration tests: cross-module scenarios exercising the full stack
// (balancer + invariants + KV + protocol traces + harness) the way the
// examples and benches do.

#include <gtest/gtest.h>

#include <string>

#include "ch/ring.hpp"
#include "cluster/capacity.hpp"
#include "cluster/protocol_sim.hpp"
#include "dht/invariants.hpp"
#include "kv/store.hpp"
#include "sim/growth.hpp"
#include "sim/theta.hpp"

namespace cobalt {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(EndToEnd, PaperScaleGrowthKeepsEveryInvariant) {
  // The exact figure-4 configuration, single run, full invariant check
  // at the paper's checkpoints.
  dht::LocalDht dht(cfg(32, 32, 99));
  const auto snode = dht.add_snode();
  for (int v = 1; v <= 1024; ++v) {
    dht.create_vnode(snode);
    if (v % 128 == 0 || v == 1 || v == 65) {
      ASSERT_NO_THROW(dht::check_invariants(dht)) << "V = " << v;
    }
  }
  EXPECT_EQ(dht.vnode_count(), 1024u);
  // The paper's plateau: sigma(Qv) around 10% for (32, 32).
  EXPECT_GT(dht.sigma_qv(), 0.02);
  EXPECT_LT(dht.sigma_qv(), 0.25);
  // Greal lands in the expected band around Gideal = 16.
  EXPECT_GE(dht.group_count(), 16u);
  EXPECT_LE(dht.group_count(), 32u);
}

TEST(EndToEnd, KvStoreSurvivesAggressiveElasticityWithData) {
  kv::KvStore store({cfg(8, 8, 123), 2});

  // Interleave writes, growth, reads and removals.
  std::vector<placement::NodeId> nodes;
  nodes.push_back(store.add_node());
  int next_key = 0;
  for (int round = 0; round < 12; ++round) {
    for (int k = 0; k < 500; ++k) {
      store.put("it/" + std::to_string(next_key),
                std::to_string(next_key));
      ++next_key;
    }
    for (int j = 0; j < 2; ++j) nodes.push_back(store.add_node());
    if (round % 3 == 2) {
      // A leave mid-traffic (the local approach may refuse; the node
      // then simply stays).
      if (store.remove_node(nodes.front())) nodes.erase(nodes.begin());
    }
    // Spot-check reads of old and new keys every round.
    for (int probe = 0; probe < next_key; probe += 97) {
      ASSERT_EQ(store.get("it/" + std::to_string(probe)),
                std::to_string(probe))
          << "round " << round;
    }
  }
  ASSERT_NO_THROW(dht::check_invariants(store.backend().dht(),
                                        /*creation_only=*/false));
  EXPECT_EQ(store.size(), static_cast<std::size_t>(next_key));
}

TEST(EndToEnd, OneScenarioLoopDrivesEveryStoreBackend) {
  // The store-level counterpart of figure 9: the same loop loads,
  // grows and audits a store; only the backend differs.
  const auto audit = [](auto& store) {
    for (int n = 0; n < 3; ++n) store.add_node();
    for (int i = 0; i < 2000; ++i) {
      store.put("x/" + std::to_string(i), std::to_string(i));
    }
    for (int n = 0; n < 5; ++n) store.add_node();
    std::size_t resident = 0;
    for (const auto c : store.keys_per_node()) resident += c;
    EXPECT_EQ(resident, 2000u);
    EXPECT_EQ(store.size(), 2000u);
    EXPECT_GT(store.migration_stats().keys_moved_across_nodes, 0u);
    return store.backend().sigma();
  };
  kv::KvStore local({cfg(8, 8, 31), 1});
  kv::GlobalKvStore global({cfg(8, 1, 31), 1});
  kv::ChKvStore ch({31, 16});
  EXPECT_LT(audit(local), 1.0);
  EXPECT_LT(audit(global), 1.0);
  EXPECT_LT(audit(ch), 1.0);
}

TEST(EndToEnd, GrowthHarnessAgreesWithDirectSimulation) {
  // sim::run_local_growth must be exactly a LocalDht growth loop.
  const auto series =
      sim::run_local_growth(cfg(16, 8, 7), 200, sim::Metric::kSigmaQv);
  dht::LocalDht dht(cfg(16, 8, 7));
  const auto snode = dht.add_snode();
  for (int v = 0; v < 200; ++v) dht.create_vnode(snode);
  EXPECT_DOUBLE_EQ(series.back(), dht.sigma_qv());
}

TEST(EndToEnd, ThetaPipelineReproducesTheParameterChoice) {
  // A reduced-scale figure-5 pipeline (fewer runs): theta still selects
  // an interior Vmin, demonstrating the quality/cost trade-off.
  const std::vector<std::uint64_t> vmins{8, 16, 32, 64, 128};
  std::vector<double> sigmas;
  for (const auto vmin : vmins) {
    const auto make = [&, vmin](std::uint64_t seed) {
      const auto s = sim::run_local_growth(cfg(vmin, vmin, seed), 1024,
                                           sim::Metric::kSigmaQv);
      return std::vector<double>{s.back()};
    };
    sigmas.push_back(sim::average_runs(10, 77, vmin, make)[0]);
  }
  const auto points = sim::compute_theta(vmins, sigmas, 0.5);
  const auto best = sim::argmin_theta(points);
  EXPECT_GT(best.vmin, 8u);
  EXPECT_LT(best.vmin, 128u);
}

TEST(EndToEnd, ProtocolTraceMatchesBalancerGroupStructure) {
  // The DES trace's domain count must equal the balancer's slot count,
  // and the last rounds' participants must match live group spans.
  const auto trace = cluster::record_local_trace(cfg(8, 8, 5), 16, 200);
  dht::LocalDht dht(cfg(8, 8, 5));
  for (int s = 0; s < 16; ++s) dht.add_snode();
  for (int v = 0; v < 200; ++v) {
    dht.create_vnode(static_cast<dht::SNodeId>(v % 16));
  }
  EXPECT_EQ(trace.domains, dht.group_slot_count());
  const auto result = cluster::replay_trace(trace, cluster::NetworkModel{});
  EXPECT_GT(result.concurrency, 1.0);
}

TEST(EndToEnd, HeterogeneousSharesTrackCapacity) {
  const auto capacities =
      cluster::make_capacities(cluster::CapacityProfile::kTwoGenerations, 6);
  dht::LocalDht dht(cfg(16, 16, 31));
  double total_capacity = 0.0;
  for (const double c : capacities) total_capacity += c;
  for (std::size_t s = 0; s < capacities.size(); ++s) {
    const auto id = dht.add_snode(capacities[s]);
    const std::size_t count = cluster::vnodes_for_capacity(8, capacities[s]);
    for (std::size_t v = 0; v < count; ++v) dht.create_vnode(id);
  }
  dht::check_invariants(dht);
  // Per-snode quota approximates capacity share.
  for (std::size_t s = 0; s < capacities.size(); ++s) {
    Dyadic quota;
    for (const auto v : dht.snode(static_cast<dht::SNodeId>(s)).vnodes) {
      quota += dht.exact_quota(v);
    }
    const double expected = capacities[s] / total_capacity;
    EXPECT_NEAR(quota.to_double(), expected, expected * 0.35)
        << "snode " << s;
  }
}

TEST(EndToEnd, DeterminismAcrossTheWholeStack) {
  // Same seeds => identical balancer state, KV placement, CH ring and
  // protocol replay, across independent constructions.
  const auto run_once = [] {
    kv::KvStore store({cfg(8, 8, 2024), 1});
    store.add_node();
    for (int i = 0; i < 1000; ++i) store.put("d" + std::to_string(i), "v");
    for (int i = 0; i < 10; ++i) store.add_node();
    const auto keys = store.keys_per_node();
    const auto trace = cluster::record_local_trace(cfg(8, 8, 1), 8, 100);
    const auto replay = cluster::replay_trace(trace, cluster::NetworkModel{});
    return std::tuple{keys, store.backend().sigma(), replay.makespan_us,
                      replay.messages};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EndToEnd, LocalQualityBeatsChAtMatchedFootprint) {
  // The figure-9 headline at test scale: 256 homogeneous nodes, one
  // vnode per snode, Pmin=32 vs CH with 32 points per node.
  dht::LocalDht dht(cfg(32, 32, 11));
  for (int n = 0; n < 256; ++n) {
    dht.create_vnode(dht.add_snode());
  }
  ch::ConsistentHashRing ring(11);
  for (int n = 0; n < 256; ++n) ring.add_node(32);
  EXPECT_LT(dht.sigma_qv(), ring.sigma_qn());
}

}  // namespace
}  // namespace cobalt
