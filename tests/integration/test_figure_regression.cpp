// Figure-shape regression tests: a reduced-scale rendition of each
// reproduced figure's defining property, pinned into the test suite so
// a behavioural regression in the balancers cannot slip past CI even
// if nobody re-reads the bench output. (The bench harnesses check the
// same shapes at full scale - 100 runs - as the paper does.)

#include <gtest/gtest.h>

#include "sim/growth.hpp"
#include "sim/theta.hpp"

namespace cobalt {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

constexpr std::size_t kVnodes = 1024;
constexpr std::size_t kRuns = 5;
constexpr std::uint64_t kRoot = 0x5eed;

double plateau(const std::vector<double>& series) {
  double sum = 0.0;
  const std::size_t from = series.size() - series.size() / 4;
  for (std::size_t i = from; i < series.size(); ++i) sum += series[i];
  return sum / static_cast<double>(series.size() - from);
}

std::vector<double> averaged_local(std::uint64_t pmin, std::uint64_t vmin,
                                   sim::Metric metric) {
  return sim::average_runs(kRuns, kRoot, pmin * 1000 + vmin,
                           [&](std::uint64_t seed) {
                             return sim::run_local_growth(
                                 cfg(pmin, vmin, seed), kVnodes, metric);
                           });
}

TEST(FigureRegression, Fig4PlateauBandsAndOrdering) {
  const auto p8 = plateau(averaged_local(8, 8, sim::Metric::kSigmaQv));
  const auto p32 = plateau(averaged_local(32, 32, sim::Metric::kSigmaQv));
  const auto p128 = plateau(averaged_local(128, 128, sim::Metric::kSigmaQv));
  // Paper's figure 4 bands (generous to sampling noise at 5 runs).
  EXPECT_GT(p8, 0.17);
  EXPECT_LT(p8, 0.27);
  EXPECT_GT(p32, 0.07);
  EXPECT_LT(p32, 0.14);
  EXPECT_GT(p128, 0.02);
  EXPECT_LT(p128, 0.07);
  EXPECT_LT(p32, p8);
  EXPECT_LT(p128, p32);
}

TEST(FigureRegression, Fig5ThetaMinimizesAtThirtyTwo) {
  const std::vector<std::uint64_t> vmins{8, 16, 32, 64, 128};
  std::vector<double> sigmas;
  for (const auto vmin : vmins) {
    sigmas.push_back(
        averaged_local(vmin, vmin, sim::Metric::kSigmaQv).back());
  }
  const auto best =
      sim::argmin_theta(sim::compute_theta(vmins, sigmas, 0.5));
  EXPECT_EQ(best.vmin, 32u);
}

TEST(FigureRegression, Fig6MonotoneInVminAndGlobalLimit) {
  const auto v8 = plateau(averaged_local(32, 8, sim::Metric::kSigmaQv));
  const auto v64 = plateau(averaged_local(32, 64, sim::Metric::kSigmaQv));
  const auto v512 = averaged_local(32, 512, sim::Metric::kSigmaQv);
  EXPECT_LT(v64, v8);
  // Single group throughout: exactly the global sawtooth, zero at 2^k.
  EXPECT_NEAR(v512[1023], 0.0, 1e-12);
  EXPECT_NEAR(v512[511], 0.0, 1e-12);
}

TEST(FigureRegression, Fig7GroupCountBand) {
  const auto greal = averaged_local(32, 32, sim::Metric::kGroupCount);
  EXPECT_GE(greal.back(), 16.0);   // Gideal at V=1024
  EXPECT_LE(greal.back(), 26.0);   // paper's plot tops out ~24
}

TEST(FigureRegression, Fig8SpikeBand) {
  const auto qg = averaged_local(32, 32, sim::Metric::kSigmaQg);
  double peak = 0.0;
  for (const double v : qg) peak = std::max(peak, v);
  EXPECT_GT(peak, 0.20);
  EXPECT_LT(peak, 0.55);
  // Zero while one group exists.
  for (std::size_t v = 0; v < 64; ++v) EXPECT_NEAR(qg[v], 0.0, 1e-12);
}

TEST(FigureRegression, Fig9ChLevelsAndLocalWin) {
  const auto ch32 = sim::average_runs(
      kRuns, kRoot, 9032, [](std::uint64_t seed) {
        return sim::run_ch_growth(seed, kVnodes, 32);
      });
  const auto local32 = averaged_local(32, 32, sim::Metric::kSigmaQv);
  const double ch_level = plateau(ch32);
  EXPECT_GT(ch_level, 0.13);
  EXPECT_LT(ch_level, 0.25);
  EXPECT_LT(plateau(local32), ch_level);
}

}  // namespace
}  // namespace cobalt
