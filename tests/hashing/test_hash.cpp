// Tests for the hash-function implementations, against published test
// vectors and statistical properties.

#include "hashing/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hashing/hash_space.hpp"

namespace cobalt::hashing {
namespace {

TEST(Fnv1a64, PublishedTestVectors) {
  // Reference vectors from the FNV specification page.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Xxh64, PublishedTestVectors) {
  // Reference vectors from the xxHash repository.
  EXPECT_EQ(xxh64("", 0), 0xEF46DB3751D8E999ull);
  EXPECT_EQ(xxh64("a", 0), 0xD24EC4F1A98C6E5Bull);
  EXPECT_EQ(xxh64("abc", 0), 0x44BC2CF5AD770999ull);
}

TEST(Xxh64, SeedChangesTheHash) {
  EXPECT_NE(xxh64("payload", 0), xxh64("payload", 1));
  EXPECT_EQ(xxh64("payload", 7), xxh64("payload", 7));
}

TEST(Xxh64, CoversAllLengthPaths) {
  // Exercise the <4, <8, <32 and >=32 byte code paths and verify they
  // all differ (no accidental truncation).
  std::set<std::uint64_t> hashes;
  std::string s;
  for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 63u,
                          64u, 100u}) {
    s.assign(len, 'x');
    hashes.insert(xxh64(s));
  }
  EXPECT_EQ(hashes.size(), 13u);
}

TEST(HashBytes, DispatchesOnAlgorithm) {
  const std::string key = "dispatch";
  EXPECT_EQ(hash_bytes(Algorithm::kFnv1a64, key.data(), key.size()),
            fnv1a64(key));
  EXPECT_EQ(hash_bytes(Algorithm::kXxh64, key.data(), key.size(), 5),
            xxh64(key, 5));
}

TEST(Hashes, SingleBitChangesAvalanche) {
  // Flipping one input bit flips ~half the output bits on average.
  for (const Algorithm algorithm : {Algorithm::kFnv1a64, Algorithm::kXxh64}) {
    double total_flips = 0.0;
    int cases = 0;
    for (int i = 0; i < 64; ++i) {
      std::string a = "avalanche-test-key-0000";
      std::string b = a;
      b[static_cast<std::size_t>(i) % b.size()] ^=
          static_cast<char>(1 << (i % 8));
      if (a == b) continue;
      const std::uint64_t d = hash_bytes(algorithm, a.data(), a.size()) ^
                              hash_bytes(algorithm, b.data(), b.size());
      total_flips += static_cast<double>(__builtin_popcountll(d));
      ++cases;
    }
    const double mean_flips = total_flips / cases;
    EXPECT_GT(mean_flips, 24.0) << "algorithm " << static_cast<int>(algorithm);
    EXPECT_LT(mean_flips, 40.0) << "algorithm " << static_cast<int>(algorithm);
  }
}

TEST(Hashes, OutputIsUniformAcrossHashSpaceHalves) {
  // Keys hashed into R_h should split evenly around the midpoint -
  // the property the DHT's balancement ultimately relies on.
  for (const Algorithm algorithm : {Algorithm::kFnv1a64, Algorithm::kXxh64}) {
    int upper = 0;
    constexpr int kKeys = 20000;
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "uniformity/" + std::to_string(i);
      if (hash_bytes(algorithm, key.data(), key.size()) >
          HashSpace::kMaxIndex / 2) {
        ++upper;
      }
    }
    EXPECT_NEAR(upper, kKeys / 2, kKeys / 20);
  }
}

TEST(Hashes, FewCollisionsOnSequentialKeys) {
  std::set<std::uint64_t> seen;
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) {
    seen.insert(xxh64("key-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kKeys));
}

TEST(HashSpace, QuotasAreExactPowersOfTwo) {
  EXPECT_EQ(HashSpace::whole(), Dyadic::one());
  EXPECT_EQ(HashSpace::quota_at_level(3) * 8, Dyadic::one());
  EXPECT_EQ(HashSpace::kBits, 64u);
  EXPECT_EQ(HashSpace::kMaxIndex, ~std::uint64_t{0});
}

}  // namespace
}  // namespace cobalt::hashing
