// Tests for the placement layer: the PlacementBackend concept and the
// seven adapters (local DHT, global DHT, Consistent Hashing, HRW,
// jump, maglev, bounded-load CH), including the removal drain paths
// and relocation-event surfaces. Cross-backend properties live in
// test_backend_properties.cpp; this file covers scheme-specific
// behaviour.

#include "placement/backend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "dht/invariants.hpp"
#include "placement/bounded_ch_backend.hpp"
#include "placement/ch_backend.hpp"
#include "placement/dht_backend.hpp"
#include "placement/hrw_backend.hpp"
#include "placement/jump_backend.hpp"
#include "placement/maglev_backend.hpp"

namespace cobalt::placement {
namespace {

// The shipped schemes model the concept - enforced at compile time,
// so a surface regression is a build error, not a test failure.
static_assert(PlacementBackend<LocalDhtBackend>);
static_assert(PlacementBackend<GlobalDhtBackend>);
static_assert(PlacementBackend<ChBackend>);
static_assert(PlacementBackend<HrwBackend>);
static_assert(PlacementBackend<JumpBackend>);
static_assert(PlacementBackend<MaglevBackend>);
static_assert(PlacementBackend<BoundedChBackend>);

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Collects relocation events for assertions.
class EventLog final : public RelocationObserver {
 public:
  struct Relocation {
    HashIndex first;
    HashIndex last;
    NodeId from;
    NodeId to;
  };

  void on_relocate(HashIndex first, HashIndex last, NodeId from,
                   NodeId to) override {
    ASSERT_LE(first, last) << "ranges must not wrap";
    relocations.push_back({first, last, from, to});
  }

  void on_rebucket(HashIndex first, HashIndex last) override {
    ASSERT_LE(first, last) << "ranges must not wrap";
    ++rebuckets;
  }

  std::vector<Relocation> relocations;
  std::size_t rebuckets = 0;
};

TEST(DhtBackend, QuotasSumToOneAndSigmaMatchesTheBalancer) {
  LocalDhtBackend backend({cfg(8, 8, 1), 1});
  for (int n = 0; n < 50; ++n) backend.add_node();
  EXPECT_EQ(backend.node_count(), 50u);
  const auto quotas = backend.quotas();
  ASSERT_EQ(quotas.size(), 50u);
  const double sum = std::accumulate(quotas.begin(), quotas.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // One vnode per node: the node metric IS the paper's sigma-bar(Qv).
  EXPECT_DOUBLE_EQ(backend.sigma(), backend.dht().sigma_qv());
}

TEST(DhtBackend, CapacityScalesEnrollment) {
  GlobalDhtBackend backend({cfg(8, 1, 2), 4});
  const NodeId small = backend.add_node(1.0);
  const NodeId big = backend.add_node(2.5);
  EXPECT_EQ(backend.vnodes_of(small), 4u);
  EXPECT_EQ(backend.vnodes_of(big), 10u);
  // Quotas follow enrollment: big ~ 2.5x small.
  const auto quotas = backend.quotas();
  EXPECT_NEAR(quotas[1] / quotas[0], 2.5, 0.8);
}

TEST(DhtBackend, OwnerOfAgreesWithTheRoutingMap) {
  LocalDhtBackend backend({cfg(8, 4, 3), 2});
  for (int n = 0; n < 10; ++n) backend.add_node();
  for (HashIndex probe : {HashIndex{0}, HashIndex{1} << 40,
                          HashIndex{1} << 63, HashSpace::kMaxIndex}) {
    const auto hit = backend.dht().lookup(probe);
    EXPECT_EQ(backend.owner_of(probe),
              static_cast<NodeId>(backend.dht().vnode(hit.owner).snode));
  }
}

TEST(DhtBackend, GlobalRemovalDrainsThroughMerges) {
  // Grow far enough for several split waves, then shrink back across
  // power-of-two boundaries: every removal drains through
  // merge_everything and the invariants must hold at each step.
  GlobalDhtBackend backend({cfg(8, 1, 4), 1});
  std::vector<NodeId> nodes;
  for (int n = 0; n < 33; ++n) nodes.push_back(backend.add_node());
  const unsigned level_at_peak = backend.dht().splitlevel();

  for (int n = 32; n >= 2; --n) {
    ASSERT_TRUE(backend.remove_node(nodes[static_cast<std::size_t>(n)]));
    dht::check_invariants(backend.dht(), /*creation_only=*/false);
  }
  EXPECT_EQ(backend.node_count(), 2u);
  // The merge waves rewound the splitlevel toward the bootstrap value.
  EXPECT_LT(backend.dht().splitlevel(), level_at_peak);
  // Survivors cover the whole range.
  const auto quotas = backend.quotas();
  EXPECT_NEAR(std::accumulate(quotas.begin(), quotas.end(), 0.0), 1.0,
              1e-12);
}

TEST(DhtBackend, LocalRefusalLeavesTheNodeFullyEnrolled) {
  // Drive removals across many multi-vnode nodes; whenever the local
  // approach refuses, the targeted node must keep its full enrollment
  // and the balancer must stay consistent (the rollback path).
  LocalDhtBackend backend({cfg(4, 4, 5), 2});
  std::vector<NodeId> nodes;
  for (int n = 0; n < 24; ++n) nodes.push_back(backend.add_node());

  std::size_t refused = 0;
  std::size_t completed = 0;
  for (const NodeId node : nodes) {
    if (backend.node_count() <= 2) break;
    const std::size_t enrolled_before = backend.vnodes_of(node);
    if (backend.remove_node(node)) {
      ++completed;
      EXPECT_FALSE(backend.is_live(node));
      EXPECT_EQ(backend.vnodes_of(node), 0u);
    } else {
      ++refused;
      EXPECT_TRUE(backend.is_live(node));
      EXPECT_EQ(backend.vnodes_of(node), enrolled_before);
    }
    ASSERT_NO_THROW(
        dht::check_invariants(backend.dht(), /*creation_only=*/false));
  }
  EXPECT_GT(completed, 0u);
}

TEST(Backends, NonPositiveCapacityIsRejected) {
  // Regression: a negative capacity must not wrap through the
  // size_t enrollment scaling into a near-infinite join loop.
  LocalDhtBackend local({cfg(8, 8, 30), 2});
  EXPECT_THROW((void)local.add_node(-1.0), InvalidArgument);
  EXPECT_THROW((void)local.add_node(0.0), InvalidArgument);
  ChBackend ch({30, 8});
  EXPECT_THROW((void)ch.add_node(-1.0), InvalidArgument);
  const NodeId node = local.add_node(1.0);
  local.add_node(1.0);
  EXPECT_THROW((void)local.resize_node(node, -2.0), InvalidArgument);
}

TEST(DhtBackend, RemovalPreconditions) {
  GlobalDhtBackend backend({cfg(8, 1, 6), 1});
  const NodeId only = backend.add_node();
  EXPECT_THROW((void)backend.remove_node(only), InvalidArgument);
  backend.add_node();
  ASSERT_TRUE(backend.remove_node(only));
  EXPECT_THROW((void)backend.remove_node(only), InvalidArgument);  // dead
  EXPECT_THROW((void)backend.remove_node(99), InvalidArgument);  // unknown
}

TEST(DhtBackend, ResizeNodeTracksCapacity) {
  GlobalDhtBackend backend({cfg(8, 1, 7), 2});
  const NodeId node = backend.add_node(1.0);
  backend.add_node(1.0);
  EXPECT_EQ(backend.vnodes_of(node), 2u);
  EXPECT_TRUE(backend.resize_node(node, 3.0));
  EXPECT_EQ(backend.vnodes_of(node), 6u);
  EXPECT_TRUE(backend.resize_node(node, 1.0));
  EXPECT_EQ(backend.vnodes_of(node), 2u);
  dht::check_invariants(backend.dht(), /*creation_only=*/false);
}

TEST(DhtBackend, TransferEventsCarryNodeLevelEndpoints) {
  EventLog log;
  LocalDhtBackend backend({cfg(8, 8, 8), 1});
  backend.set_observer(&log);
  for (int n = 0; n < 6; ++n) backend.add_node();
  EXPECT_FALSE(log.relocations.empty());
  for (const auto& r : log.relocations) {
    EXPECT_LT(r.from, backend.node_slot_count());
    EXPECT_LT(r.to, backend.node_slot_count());
    // One vnode per node: a handover always crosses nodes.
    EXPECT_NE(r.from, r.to);
  }
  // Crossing V = 2^k triggered split waves.
  EXPECT_GT(log.rebuckets, 0u);
  backend.set_observer(nullptr);
}

TEST(ChBackend, SigmaAndQuotasComeFromTheRing) {
  ChBackend backend({21, 32});
  for (int n = 0; n < 16; ++n) backend.add_node();
  EXPECT_DOUBLE_EQ(backend.sigma(), backend.ring().sigma_qn());
  EXPECT_EQ(backend.quotas(), backend.ring().quotas());
  EXPECT_EQ(backend.node_count(), 16u);
  EXPECT_EQ(backend.node_slot_count(), 16u);
}

TEST(ChBackend, ArcEventsPartitionTheStolenTerritory) {
  // The arcs reported for a join must be disjoint, owned by the new
  // node afterwards, and their exact total length must equal the new
  // node's arc units.
  EventLog log;
  ChBackend backend({23, 16});
  for (int n = 0; n < 8; ++n) backend.add_node();
  backend.set_observer(&log);
  const NodeId joined = backend.add_node();
  backend.set_observer(nullptr);

  ASSERT_FALSE(log.relocations.empty());
  uint128 stolen = 0;
  for (const auto& r : log.relocations) {
    EXPECT_EQ(r.to, joined);
    EXPECT_NE(r.from, joined);
    EXPECT_EQ(backend.owner_of(r.first), joined);
    EXPECT_EQ(backend.owner_of(r.last), joined);
    stolen += static_cast<uint128>(r.last - r.first) + 1;
  }
  EXPECT_TRUE(stolen == backend.ring().arc_units(joined));
}

TEST(ChBackend, LeaveEventsReturnTheTerritory) {
  EventLog log;
  ChBackend backend({25, 16});
  for (int n = 0; n < 8; ++n) backend.add_node();
  const uint128 owned = backend.ring().arc_units(4);
  backend.set_observer(&log);
  ASSERT_TRUE(backend.remove_node(4));
  backend.set_observer(nullptr);

  uint128 returned = 0;
  for (const auto& r : log.relocations) {
    EXPECT_EQ(r.from, 4u);
    EXPECT_NE(r.to, 4u);
    returned += static_cast<uint128>(r.last - r.first) + 1;
  }
  EXPECT_TRUE(returned == owned);
  EXPECT_FALSE(backend.is_live(4));
}

// --- HRW (rendezvous) ----------------------------------------------

TEST(HrwBackend, WeightsScaleQuotas) {
  HrwBackend backend({31, 12});
  backend.add_node(1.0);
  const NodeId big = backend.add_node(3.0);
  for (int n = 0; n < 6; ++n) backend.add_node(1.0);
  // Expected quota of the weighted node: 3 / (7 + 3).
  const auto quotas = backend.quotas();
  EXPECT_NEAR(quotas[big], 0.3, 0.08);
  EXPECT_THROW((void)backend.add_node(0.0), InvalidArgument);
  EXPECT_THROW((void)backend.add_node(-1.0), InvalidArgument);
}

TEST(HrwBackend, RemovalRedistributesOnlyTheVictimsCells) {
  HrwBackend backend({32, 10});
  for (int n = 0; n < 8; ++n) backend.add_node();
  // Snapshot ownership, remove node 3, and require every cell that
  // changed hands to have belonged to the victim.
  const auto before = backend.grid().owners();
  ASSERT_TRUE(backend.remove_node(3));
  const auto& after = backend.grid().owners();
  std::size_t changed = 0;
  for (std::size_t cell = 0; cell < before.size(); ++cell) {
    if (before[cell] == after[cell]) continue;
    ++changed;
    EXPECT_EQ(before[cell], 3u);
    EXPECT_NE(after[cell], 3u);
    EXPECT_TRUE(backend.is_live(after[cell]));
  }
  EXPECT_GT(changed, 0u);
  EXPECT_EQ(backend.weight_of(3), 0.0);
}

// --- jump consistent hash ------------------------------------------

TEST(JumpBackend, NonTailRemovalRemapsTheTailBucket) {
  JumpBackend backend({33, 10});
  std::vector<NodeId> nodes;
  for (int n = 0; n < 6; ++n) nodes.push_back(backend.add_node());
  ASSERT_EQ(backend.bucket_of(nodes[5]), 5u);
  // Removing bucket 2's node moves the tail node into bucket 2.
  ASSERT_TRUE(backend.remove_node(nodes[2]));
  EXPECT_FALSE(backend.is_live(nodes[2]));
  EXPECT_EQ(backend.bucket_of(nodes[2]), JumpBackend::kNoBucket);
  EXPECT_EQ(backend.bucket_of(nodes[5]), 2u);
  EXPECT_EQ(backend.node_count(), 5u);
  // Tail removal needs no remap.
  ASSERT_TRUE(backend.remove_node(nodes[4]));
  EXPECT_EQ(backend.node_count(), 4u);
  // The survivors still cover R_h.
  const auto quotas = backend.quotas();
  EXPECT_NEAR(std::accumulate(quotas.begin(), quotas.end(), 0.0), 1.0,
              1e-12);
}

TEST(JumpBackend, RejectsWeightsItCannotExpress) {
  JumpBackend backend({34, 8});
  backend.add_node();
  EXPECT_THROW((void)backend.add_node(2.0), InvalidArgument);
  EXPECT_EQ(backend.node_count(), 1u);
}

TEST(JumpBackend, GrowthIsMinimalDisruption) {
  // Jump's defining property: a join only moves cells into the new
  // node - nothing shuffles between the survivors.
  JumpBackend backend({35, 12});
  for (int n = 0; n < 9; ++n) backend.add_node();
  const auto before = backend.grid().owners();
  const NodeId joined = backend.add_node();
  const auto& after = backend.grid().owners();
  for (std::size_t cell = 0; cell < before.size(); ++cell) {
    if (before[cell] != after[cell]) {
      EXPECT_EQ(after[cell], joined);
    }
  }
}

// --- maglev ---------------------------------------------------------

TEST(MaglevBackend, TableFillIsNearlyEven) {
  MaglevBackend backend({36, 12});
  for (int n = 0; n < 7; ++n) backend.add_node();
  // 4096 slots over 7 homogeneous nodes: every node's entry count is
  // within one claim round of the fair share.
  const auto counts = backend.table().cell_counts(7);
  const double fair = 4096.0 / 7.0;
  for (const auto count : counts) {
    EXPECT_NEAR(static_cast<double>(count), fair, 2.0);
  }
}

TEST(MaglevBackend, WeightsScaleTableShares) {
  MaglevBackend backend({37, 12});
  const NodeId small = backend.add_node(1.0);
  const NodeId big = backend.add_node(3.0);
  const auto quotas = backend.quotas();
  EXPECT_NEAR(quotas[big] / quotas[small], 3.0, 0.1);
}

// --- bounded-load CH ------------------------------------------------

TEST(BoundedChBackend, NoNodeExceedsItsCap) {
  BoundedChBackend backend({38, 8, 0.25, 12});
  for (int n = 0; n < 10; ++n) backend.add_node();
  const auto counts = backend.grid().cell_counts(10);
  for (NodeId node = 0; node < 10; ++node) {
    EXPECT_LE(counts[node], backend.cap_of(node)) << "node " << node;
    EXPECT_GT(counts[node], 0u) << "node " << node;
  }
  // The cap actually binds: plain CH with 8 points/node at N=10 has
  // heavy nodes well above (1+0.25)/N, so at least one node must sit
  // exactly at its cap.
  bool any_at_cap = false;
  for (NodeId node = 0; node < 10; ++node) {
    any_at_cap = any_at_cap || counts[node] == backend.cap_of(node);
  }
  EXPECT_TRUE(any_at_cap);
}

TEST(BoundedChBackend, SigmaImprovesOnThePlainRing) {
  BoundedChBackend bounded({39, 8, 0.25, 12});
  ChBackend plain({39, 8});
  for (int n = 0; n < 24; ++n) {
    bounded.add_node();
    plain.add_node();
  }
  // Same seed, same ring geometry: the load cap must tighten sigma.
  EXPECT_LT(bounded.sigma(), plain.sigma());
}

TEST(BoundedChBackend, ValidatesOptionsAndCapacity) {
  EXPECT_THROW(BoundedChBackend({40, 8, 0.0, 12}), InvalidArgument);
  EXPECT_THROW(BoundedChBackend({40, 0, 0.25, 12}), InvalidArgument);
  BoundedChBackend backend({40, 8, 0.25, 12});
  EXPECT_THROW((void)backend.add_node(0.0), InvalidArgument);
}

// --- leave-side mass conservation for the grid-backed schemes -------
// (The DHT adapters account implicit buddy-merge handovers as
// rebucketing, so the exact leave-side ledger is a grid/ring-scheme
// property; the join side is covered for all seven backends in
// test_backend_properties.cpp.)

template <typename B>
void expect_leave_conserves_mass(typename B::Options options) {
  B backend(options);
  for (int n = 0; n < 9; ++n) backend.add_node();
  const double owned = backend.quotas()[4];

  EventLog log;
  backend.set_observer(&log);
  ASSERT_TRUE(backend.remove_node(4));
  backend.set_observer(nullptr);

  // Maglev's repopulation, jump's disappearing tail bucket and bounded
  // CH's cap growth may legitimately shuffle mass between survivors
  // too, so the conservation claim is about the *net* outflow of the
  // victim - but nothing may ever flow INTO a departed node.
  long double out = 0.0L;
  for (const auto& r : log.relocations) {
    EXPECT_NE(r.to, 4u) << "relocation into a departed node";
    EXPECT_TRUE(backend.is_live(r.to));
    if (r.from == 4u) {
      out += static_cast<long double>(r.last - r.first) + 1.0L;
    }
  }
  EXPECT_NEAR(static_cast<double>(out * 0x1.0p-64L), owned, 1e-9);
}

TEST(GridBackends, LeaveEventsReturnExactlyTheVictimsMass) {
  expect_leave_conserves_mass<HrwBackend>({41, 10});
  expect_leave_conserves_mass<JumpBackend>({42, 10});
  expect_leave_conserves_mass<MaglevBackend>({43, 10});
  expect_leave_conserves_mass<BoundedChBackend>({44, 8, 0.25, 10});
}

TEST(SchemeNames, AreDistinct) {
  const std::vector<std::string_view> names{
      LocalDhtBackend::scheme_name(), GlobalDhtBackend::scheme_name(),
      ChBackend::scheme_name(),       HrwBackend::scheme_name(),
      JumpBackend::scheme_name(),     MaglevBackend::scheme_name(),
      BoundedChBackend::scheme_name()};
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace cobalt::placement
