// Backend-generic property tests of the replication surface: one typed
// suite drives replica_set over every placement scheme - the paper's
// local and global approaches, plain Consistent Hashing, and the
// table-driven alternatives (HRW, jump, maglev, bounded-load CH) -
// through the invariants of the PlacementBackend contract
// (placement/backend.hpp):
//
//   * the set holds min(k, node_count()) distinct live nodes;
//   * rank 0 equals owner_of (the primary IS replica 0);
//   * the set for k is a prefix of the set for k' > k (the ranking is
//     independent of how many replicas are requested);
//   * departed nodes leave every replica set;
//   * the result is deterministic for a fixed membership.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/topology.hpp"
#include "common/rng.hpp"
#include "placement/backend.hpp"
#include "placement/bounded_ch_backend.hpp"
#include "placement/ch_backend.hpp"
#include "placement/dht_backend.hpp"
#include "placement/hrw_backend.hpp"
#include "placement/jump_backend.hpp"
#include "placement/maglev_backend.hpp"

namespace cobalt::placement {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Per-backend factory with a comparable footprint (small enrollments
/// and grids keep the suite fast).
template <typename B>
B make_backend(std::uint64_t seed);

template <>
LocalDhtBackend make_backend<LocalDhtBackend>(std::uint64_t seed) {
  return LocalDhtBackend({cfg(8, 8, seed), 1});
}

template <>
GlobalDhtBackend make_backend<GlobalDhtBackend>(std::uint64_t seed) {
  return GlobalDhtBackend({cfg(8, 1, seed), 1});
}

template <>
ChBackend make_backend<ChBackend>(std::uint64_t seed) {
  return ChBackend({seed, 16});
}

template <>
HrwBackend make_backend<HrwBackend>(std::uint64_t seed) {
  return HrwBackend({seed, 10});
}

template <>
JumpBackend make_backend<JumpBackend>(std::uint64_t seed) {
  return JumpBackend({seed, 10});
}

template <>
MaglevBackend make_backend<MaglevBackend>(std::uint64_t seed) {
  return MaglevBackend({seed, 10});
}

template <>
BoundedChBackend make_backend<BoundedChBackend>(std::uint64_t seed) {
  return BoundedChBackend({seed, 16, 0.25, 10});
}

/// A spread of probe points across R_h (deterministic).
std::vector<HashIndex> probe_points(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<HashIndex> points;
  points.reserve(count + 2);
  points.push_back(0);
  points.push_back(HashSpace::kMaxIndex);
  for (std::size_t i = 0; i < count; ++i) points.push_back(rng.next());
  return points;
}

bool all_distinct(const std::vector<NodeId>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[i] == nodes[j]) return false;
    }
  }
  return true;
}

template <typename B>
class ReplicaSetSuite : public ::testing::Test {};

using AllBackends =
    ::testing::Types<LocalDhtBackend, GlobalDhtBackend, ChBackend,
                     HrwBackend, JumpBackend, MaglevBackend,
                     BoundedChBackend>;
TYPED_TEST_SUITE(ReplicaSetSuite, AllBackends);

TYPED_TEST(ReplicaSetSuite, ReturnsKDistinctLiveNodesWithOwnerFirst) {
  auto backend = make_backend<TypeParam>(301);
  for (int n = 0; n < 12; ++n) backend.add_node();
  for (const HashIndex point : probe_points(40, 17)) {
    for (std::size_t k = 1; k <= 4; ++k) {
      const auto replicas = backend.replica_set(point, k);
      ASSERT_EQ(replicas.size(), k) << "point " << point << " k " << k;
      ASSERT_TRUE(all_distinct(replicas));
      for (const NodeId node : replicas) {
        ASSERT_TRUE(backend.is_live(node));
      }
      ASSERT_EQ(replicas.front(), backend.owner_of(point))
          << "rank 0 must be the primary";
    }
  }
}

TYPED_TEST(ReplicaSetSuite, SmallerKIsAPrefixOfLargerK) {
  auto backend = make_backend<TypeParam>(302);
  for (int n = 0; n < 10; ++n) backend.add_node();
  for (const HashIndex point : probe_points(25, 23)) {
    const auto four = backend.replica_set(point, 4);
    ASSERT_EQ(four.size(), 4u);
    for (std::size_t k = 1; k < 4; ++k) {
      const auto fewer = backend.replica_set(point, k);
      ASSERT_EQ(fewer.size(), k);
      EXPECT_TRUE(std::equal(fewer.begin(), fewer.end(), four.begin()))
          << "the ranking must not depend on k";
    }
  }
}

TYPED_TEST(ReplicaSetSuite, ClampsToTheLiveNodeCount) {
  auto backend = make_backend<TypeParam>(303);
  backend.add_node();
  backend.add_node();
  for (const HashIndex point : probe_points(10, 29)) {
    const auto replicas = backend.replica_set(point, 5);
    ASSERT_EQ(replicas.size(), 2u);  // min(k, node_count)
    ASSERT_TRUE(all_distinct(replicas));
    EXPECT_EQ(replicas.front(), backend.owner_of(point));
  }
}

TYPED_TEST(ReplicaSetSuite, DepartedNodesLeaveEveryReplicaSet) {
  auto backend = make_backend<TypeParam>(304);
  std::vector<NodeId> nodes;
  for (int n = 0; n < 10; ++n) nodes.push_back(backend.add_node());
  // Remove up to 3 nodes; schemes may refuse (the local approach).
  std::vector<NodeId> gone;
  for (std::size_t i = 0; i < nodes.size() && gone.size() < 3; ++i) {
    if (backend.remove_node(nodes[i])) gone.push_back(nodes[i]);
  }
  ASSERT_FALSE(gone.empty());
  for (const HashIndex point : probe_points(30, 31)) {
    const auto replicas = backend.replica_set(point, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas.front(), backend.owner_of(point));
    for (const NodeId dead : gone) {
      EXPECT_EQ(std::find(replicas.begin(), replicas.end(), dead),
                replicas.end())
          << "departed node " << dead << " still ranked";
    }
  }
}

TYPED_TEST(ReplicaSetSuite, DeterministicForAFixedMembership) {
  auto backend = make_backend<TypeParam>(305);
  for (int n = 0; n < 8; ++n) backend.add_node();
  for (const HashIndex point : probe_points(15, 37)) {
    EXPECT_EQ(backend.replica_set(point, 3), backend.replica_set(point, 3));
  }
}

TYPED_TEST(ReplicaSetSuite, SingleNodeOwnsTheOnlyReplica) {
  auto backend = make_backend<TypeParam>(306);
  const NodeId only = backend.add_node();
  for (const HashIndex point : probe_points(10, 41)) {
    const auto replicas = backend.replica_set(point, 3);
    ASSERT_EQ(replicas.size(), 1u);
    EXPECT_EQ(replicas.front(), only);
  }
}

TYPED_TEST(ReplicaSetSuite, RejectsZeroK) {
  auto backend = make_backend<TypeParam>(307);
  backend.add_node();
  EXPECT_THROW((void)backend.replica_set(0, 0), InvalidArgument);
}

// --- the bulk-repair surface (replica_set_into + dirty ranges) ------

TYPED_TEST(ReplicaSetSuite, ReplicaSetIntoMatchesReplicaSet) {
  auto backend = make_backend<TypeParam>(308);
  for (int n = 0; n < 9; ++n) backend.add_node();
  std::vector<NodeId> out;
  for (const HashIndex point : probe_points(25, 43)) {
    for (std::size_t k = 1; k <= 4; ++k) {
      out.assign(7, kInvalidNode);  // stale content must be cleared
      backend.replica_set_into(point, k, out);
      EXPECT_EQ(out, backend.replica_set(point, k))
          << "point " << point << " k " << k;
    }
  }
}

/// True when `point` lies inside one of the (inclusive, non-wrapping)
/// ranges.
bool covered(const std::vector<HashRange>& ranges, HashIndex point) {
  for (const HashRange& range : ranges) {
    if (point >= range.first && point <= range.last) return true;
  }
  return false;
}

TYPED_TEST(ReplicaSetSuite, DirtyRangesCoverEveryReplicaSetChange) {
  // The replica_dirty_ranges contract: after a membership event, any
  // point whose replica_set(., k) changed must lie inside a reported
  // range (a conservative superset is fine; a missed change would let
  // the store's planned repair silently skip real repair work).
  auto backend = make_backend<TypeParam>(309);
  for (int n = 0; n < 6; ++n) backend.add_node();
  const auto points = probe_points(120, 47);
  Xoshiro256 rng(53);

  for (int event = 0; event < 10; ++event) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}}) {
      // Snapshot, mutate, diff.
      std::vector<std::vector<NodeId>> before;
      before.reserve(points.size());
      for (const HashIndex point : points) {
        before.push_back(backend.replica_set(point, k));
      }

      if (rng.next_below(3) == 0 && backend.node_count() > 4) {
        std::vector<NodeId> live;
        for (NodeId node = 0; node < backend.node_slot_count(); ++node) {
          if (backend.is_live(node)) live.push_back(node);
        }
        const NodeId victim = live[static_cast<std::size_t>(
            rng.next_below(live.size()))];
        if (!backend.remove_node(victim)) {
          // A refused drain is its own event (an aborted decommission
          // may still have rebalanced); re-snapshot before the join so
          // the diff below spans only the most recent event - exactly
          // what replica_dirty_ranges reports.
          before.clear();
          for (const HashIndex point : points) {
            before.push_back(backend.replica_set(point, k));
          }
          backend.add_node();
        }
      } else {
        backend.add_node();
      }

      const auto dirty = backend.replica_dirty_ranges(k);
      for (std::size_t p = 0; p < points.size(); ++p) {
        if (backend.replica_set(points[p], k) == before[p]) continue;
        EXPECT_TRUE(covered(dirty, points[p]))
            << "k=" << k << " event " << event << ": replica set of point "
            << points[p] << " changed outside every dirty range";
      }
    }
  }
}

// --- the spread-aware surface (ReplicationSpec + Topology) ----------

/// Distinct failure domains represented in `replicas` under `of`.
template <typename DomainOf>
std::size_t distinct_domains(const std::vector<NodeId>& replicas,
                             DomainOf of) {
  std::vector<std::uint32_t> domains;
  for (const NodeId node : replicas) domains.push_back(of(node));
  std::sort(domains.begin(), domains.end());
  domains.erase(std::unique(domains.begin(), domains.end()), domains.end());
  return domains.size();
}

TYPED_TEST(ReplicaSetSuite, SpreadNoneMatchesTheRawWalkBitForBit) {
  // SpreadPolicy::kNone must reproduce the raw ranked walk exactly,
  // topology attached or not - the abl8 byte-parity guarantee.
  auto backend = make_backend<TypeParam>(310);
  for (int n = 0; n < 12; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(4, 3);
  backend.set_topology(&topo);
  for (const HashIndex point : probe_points(30, 59)) {
    for (std::size_t k = 1; k <= 3; ++k) {
      const ReplicationSpec spec{k, SpreadPolicy::kNone};
      EXPECT_EQ(backend.replica_set(point, spec),
                backend.replica_set(point, k));
    }
  }
}

TYPED_TEST(ReplicaSetSuite, SpreadWithoutTopologyMatchesTheRawWalk) {
  auto backend = make_backend<TypeParam>(311);
  for (int n = 0; n < 10; ++n) backend.add_node();
  ASSERT_EQ(backend.topology(), nullptr);
  for (const HashIndex point : probe_points(20, 61)) {
    const ReplicationSpec spec{3, SpreadPolicy::kRack};
    EXPECT_EQ(backend.replica_set(point, spec),
              backend.replica_set(point, 3));
  }
}

TYPED_TEST(ReplicaSetSuite, RackSpreadPlacesReplicasOnDistinctRacks) {
  auto backend = make_backend<TypeParam>(312);
  for (int n = 0; n < 12; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(4, 3);
  backend.set_topology(&topo);
  for (const HashIndex point : probe_points(40, 67)) {
    for (std::size_t k = 2; k <= 3; ++k) {
      const ReplicationSpec spec{k, SpreadPolicy::kRack};
      const auto replicas = backend.replica_set(point, spec);
      ASSERT_EQ(replicas.size(), k);
      ASSERT_TRUE(all_distinct(replicas));
      EXPECT_EQ(replicas.front(), backend.owner_of(point))
          << "rank 0 must stay the raw owner under spread";
      EXPECT_EQ(distinct_domains(replicas,
                                 [&](NodeId n) { return topo.rack_of(n); }),
                k)
          << "replicas share a rack with 4 racks available";
    }
  }
}

TYPED_TEST(ReplicaSetSuite, ZoneSpreadPlacesReplicasOnDistinctZones) {
  auto backend = make_backend<TypeParam>(313);
  for (int n = 0; n < 12; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(4, 3, 2);
  backend.set_topology(&topo);
  for (const HashIndex point : probe_points(30, 71)) {
    const ReplicationSpec spec{2, SpreadPolicy::kZone};
    const auto replicas = backend.replica_set(point, spec);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_EQ(replicas.front(), backend.owner_of(point));
    EXPECT_EQ(distinct_domains(replicas,
                               [&](NodeId n) { return topo.zone_of(n); }),
              2u);
  }
}

TYPED_TEST(ReplicaSetSuite, SpreadFallsBackGracefullyWhenDomainsRunOut) {
  // 2 racks, k = 3: one node per rack first, then the filter fills the
  // third slot from the walk - never fewer than k distinct nodes.
  auto backend = make_backend<TypeParam>(314);
  for (int n = 0; n < 10; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(2, 5);
  backend.set_topology(&topo);
  for (const HashIndex point : probe_points(30, 73)) {
    const ReplicationSpec spec{3, SpreadPolicy::kRack};
    const auto replicas = backend.replica_set(point, spec);
    ASSERT_EQ(replicas.size(), 3u);
    ASSERT_TRUE(all_distinct(replicas));
    EXPECT_EQ(replicas.front(), backend.owner_of(point));
    EXPECT_EQ(distinct_domains(replicas,
                               [&](NodeId n) { return topo.rack_of(n); }),
              2u)
        << "both racks must still be represented";
  }
}

TYPED_TEST(ReplicaSetSuite, SpreadSmallerKIsAPrefixOfLargerK) {
  // The spread walk keeps the prefix-stability contract of the raw
  // walk: the first min(k, domains) slots are the walk-order first
  // appearances of each new domain, independent of k.
  auto backend = make_backend<TypeParam>(315);
  for (int n = 0; n < 12; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(4, 3);
  backend.set_topology(&topo);
  for (const HashIndex point : probe_points(25, 79)) {
    const ReplicationSpec three{3, SpreadPolicy::kRack};
    const auto full = backend.replica_set(point, three);
    ASSERT_EQ(full.size(), 3u);
    for (std::size_t k = 1; k < 3; ++k) {
      const auto fewer = backend.replica_set(point, three.with_k(k));
      ASSERT_EQ(fewer.size(), k);
      EXPECT_TRUE(std::equal(fewer.begin(), fewer.end(), full.begin()))
          << "the spread ranking must not depend on k";
    }
  }
}

TYPED_TEST(ReplicaSetSuite, SpreadReplicaSetIntoMatchesReplicaSet) {
  auto backend = make_backend<TypeParam>(316);
  for (int n = 0; n < 9; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(3, 3);
  backend.set_topology(&topo);
  std::vector<NodeId> out;
  for (const HashIndex point : probe_points(20, 83)) {
    for (const SpreadPolicy policy :
         {SpreadPolicy::kNone, SpreadPolicy::kRack, SpreadPolicy::kZone}) {
      const ReplicationSpec spec{3, policy};
      out.assign(7, kInvalidNode);  // stale content must be cleared
      backend.replica_set_into(point, spec, out);
      EXPECT_EQ(out, backend.replica_set(point, spec));
    }
  }
}

TYPED_TEST(ReplicaSetSuite, SpreadDirtyRangesCoverEverySpreadSetChange) {
  // The spec-keyed dirty-range contract, with a topology that only
  // covers the initial population: later joins land in synthetic
  // singleton racks, stressing the mixed real/synthetic domain case.
  auto backend = make_backend<TypeParam>(317);
  for (int n = 0; n < 6; ++n) backend.add_node();
  const cluster::Topology topo = cluster::Topology::uniform(3, 2);
  backend.set_topology(&topo);
  const auto points = probe_points(80, 89);
  Xoshiro256 rng(97);
  const ReplicationSpec spec{2, SpreadPolicy::kRack};

  for (int event = 0; event < 12; ++event) {
    std::vector<std::vector<NodeId>> before;
    before.reserve(points.size());
    for (const HashIndex point : points) {
      before.push_back(backend.replica_set(point, spec));
    }

    if (rng.next_below(3) == 0 && backend.node_count() > 4) {
      std::vector<NodeId> live;
      for (NodeId node = 0; node < backend.node_slot_count(); ++node) {
        if (backend.is_live(node)) live.push_back(node);
      }
      const NodeId victim = live[static_cast<std::size_t>(
          rng.next_below(live.size()))];
      if (!backend.remove_node(victim)) {
        before.clear();
        for (const HashIndex point : points) {
          before.push_back(backend.replica_set(point, spec));
        }
        backend.add_node();
      }
    } else {
      backend.add_node();
    }

    const auto dirty = backend.replica_dirty_ranges(spec);
    for (std::size_t p = 0; p < points.size(); ++p) {
      if (backend.replica_set(points[p], spec) == before[p]) continue;
      EXPECT_TRUE(covered(dirty, points[p]))
          << "event " << event << ": spread replica set of point "
          << points[p] << " changed outside every dirty range";
    }
  }
}

}  // namespace
}  // namespace cobalt::placement
