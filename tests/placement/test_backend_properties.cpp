// Backend-generic property tests: one typed suite drives every
// placement scheme - the paper's local and global approaches, plain
// Consistent Hashing, and the table-driven alternatives (HRW, jump,
// maglev, bounded-load CH) - through the same invariants:
//
//   * quotas() is a probability vector (sums to ~1.0, entries
//     non-negative) after arbitrary join/leave sequences;
//   * the relocation events of a join conserve hash-range mass: the
//     net mass reported into the new node equals the mass the node
//     ends up owning (catches wrap-around and off-by-one range
//     reporting in the adapters);
//   * the scenario drivers of sim/scenario.hpp run unmodified over
//     every backend.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/int128.hpp"
#include "common/rng.hpp"
#include "placement/backend.hpp"
#include "placement/bounded_ch_backend.hpp"
#include "placement/ch_backend.hpp"
#include "placement/dht_backend.hpp"
#include "placement/hrw_backend.hpp"
#include "placement/jump_backend.hpp"
#include "placement/maglev_backend.hpp"
#include "sim/scenario.hpp"

namespace cobalt::placement {
namespace {

// Every shipped scheme models the concept - a surface regression is a
// build error, not a test failure.
static_assert(PlacementBackend<LocalDhtBackend>);
static_assert(PlacementBackend<GlobalDhtBackend>);
static_assert(PlacementBackend<ChBackend>);
static_assert(PlacementBackend<HrwBackend>);
static_assert(PlacementBackend<JumpBackend>);
static_assert(PlacementBackend<MaglevBackend>);
static_assert(PlacementBackend<BoundedChBackend>);

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Per-backend factory with a comparable footprint (small enrollments
/// and grids keep the suite fast).
template <typename B>
B make_backend(std::uint64_t seed);

template <>
LocalDhtBackend make_backend<LocalDhtBackend>(std::uint64_t seed) {
  return LocalDhtBackend({cfg(8, 8, seed), 1});
}

template <>
GlobalDhtBackend make_backend<GlobalDhtBackend>(std::uint64_t seed) {
  return GlobalDhtBackend({cfg(8, 1, seed), 1});
}

template <>
ChBackend make_backend<ChBackend>(std::uint64_t seed) {
  return ChBackend({seed, 16});
}

template <>
HrwBackend make_backend<HrwBackend>(std::uint64_t seed) {
  return HrwBackend({seed, 10});
}

template <>
JumpBackend make_backend<JumpBackend>(std::uint64_t seed) {
  return JumpBackend({seed, 10});
}

template <>
MaglevBackend make_backend<MaglevBackend>(std::uint64_t seed) {
  return MaglevBackend({seed, 10});
}

template <>
BoundedChBackend make_backend<BoundedChBackend>(std::uint64_t seed) {
  return BoundedChBackend({seed, 16, 0.25, 10});
}

/// Accounts the mass (in 1/2^64 units of R_h) flowing into and out of
/// one node through on_relocate events, validating the range contract
/// on the way.
class MassLedger final : public RelocationObserver {
 public:
  explicit MassLedger(NodeId tracked) : tracked_(tracked) {}

  void on_relocate(HashIndex first, HashIndex last, NodeId from,
                   NodeId to) override {
    ASSERT_LE(first, last) << "ranges must not wrap";
    ASSERT_NE(from, kInvalidNode);
    ASSERT_NE(to, kInvalidNode);
    const uint128 mass = static_cast<uint128>(last - first) + 1;
    if (to == tracked_) in_ += mass;
    if (from == tracked_) out_ += mass;
    ++events_;
  }

  void on_rebucket(HashIndex first, HashIndex last) override {
    ASSERT_LE(first, last) << "ranges must not wrap";
  }

  /// Net mass into the tracked node (negative when the node is a net
  /// loser), as a fraction of R_h.
  [[nodiscard]] double net_fraction() const {
    return (static_cast<double>(in_) - static_cast<double>(out_)) *
           0x1.0p-64;
  }

  [[nodiscard]] std::size_t events() const { return events_; }

 private:
  NodeId tracked_;
  uint128 in_ = 0;
  uint128 out_ = 0;
  std::size_t events_ = 0;
};

double quota_sum(const std::vector<double>& quotas) {
  return std::accumulate(quotas.begin(), quotas.end(), 0.0);
}

template <typename B>
class BackendPropertySuite : public ::testing::Test {};

using AllBackends =
    ::testing::Types<LocalDhtBackend, GlobalDhtBackend, ChBackend,
                     HrwBackend, JumpBackend, MaglevBackend,
                     BoundedChBackend>;
TYPED_TEST_SUITE(BackendPropertySuite, AllBackends);

TYPED_TEST(BackendPropertySuite, QuotasStayAProbabilityVector) {
  auto backend = make_backend<TypeParam>(101);
  Xoshiro256 rng(977);
  backend.add_node();
  backend.add_node();
  for (int step = 0; step < 60; ++step) {
    const bool leave = backend.node_count() > 2 && rng.next_bool();
    if (leave) {
      std::vector<NodeId> live;
      for (NodeId node = 0; node < backend.node_slot_count(); ++node) {
        if (backend.is_live(node)) live.push_back(node);
      }
      const NodeId victim =
          live[static_cast<std::size_t>(rng.next_below(live.size()))];
      (void)backend.remove_node(victim);  // a refusal keeps the node
    } else {
      backend.add_node();
    }
    const auto quotas = backend.quotas();
    ASSERT_EQ(quotas.size(), backend.node_count()) << "step " << step;
    for (const double q : quotas) ASSERT_GE(q, 0.0);
    ASSERT_NEAR(quota_sum(quotas), 1.0, 1e-9) << "step " << step;
    ASSERT_GE(backend.sigma(), 0.0);
  }
}

TYPED_TEST(BackendPropertySuite, JoinEventsConserveHashRangeMass) {
  // The total mass the relocation events report into a joining node
  // (net of anything reported back out, e.g. bounded CH's overflow
  // cascade) must equal the mass the node ends up owning.
  auto backend = make_backend<TypeParam>(202);
  for (int n = 0; n < 10; ++n) backend.add_node();

  for (int joins = 0; joins < 4; ++joins) {
    MassLedger ledger(static_cast<NodeId>(backend.node_slot_count()));
    backend.set_observer(&ledger);
    backend.add_node();
    backend.set_observer(nullptr);

    EXPECT_GT(ledger.events(), 0u);
    // The joined node has the highest id, hence the last quota slot.
    const double owned = backend.quotas().back();
    EXPECT_NEAR(ledger.net_fraction(), owned, 1e-9);
  }
}

TYPED_TEST(BackendPropertySuite, ChurnScenarioRunsUnmodified) {
  auto backend = make_backend<TypeParam>(404);
  const auto outcome = sim::run_churn(backend, 12, 30, 555);
  EXPECT_EQ(outcome.sigma_series.size(), 30u);
  EXPECT_EQ(outcome.completed_removals + outcome.refused_removals, 30u);
  EXPECT_EQ(backend.node_count(), 12u);  // population held constant
  for (const double sigma : outcome.sigma_series) {
    EXPECT_TRUE(std::isfinite(sigma));
    EXPECT_GE(sigma, 0.0);
  }
}

TYPED_TEST(BackendPropertySuite, GrowthScenarioRunsUnmodified) {
  auto backend = make_backend<TypeParam>(505);
  const auto series = sim::run_growth(backend, 16);
  ASSERT_EQ(series.size(), 16u);
  EXPECT_NEAR(series[0], 0.0, 1e-12);  // one node owns everything
  for (const double sigma : series) {
    EXPECT_TRUE(std::isfinite(sigma));
    EXPECT_GE(sigma, 0.0);
  }
}

TYPED_TEST(BackendPropertySuite, DeterministicPerSeed) {
  const auto run_once = [] {
    auto backend = make_backend<TypeParam>(606);
    for (int n = 0; n < 9; ++n) backend.add_node();
    (void)backend.remove_node(4);
    backend.add_node();
    return backend.quotas();
  };
  EXPECT_EQ(run_once(), run_once());
}

TYPED_TEST(BackendPropertySuite, SchemeNamesAreNonEmptyAndStable) {
  const auto name = TypeParam::scheme_name();
  EXPECT_FALSE(name.empty());
  EXPECT_EQ(name, TypeParam::scheme_name());
}

}  // namespace
}  // namespace cobalt::placement
