// Tests for heterogeneous capacity profiles.

#include "cluster/capacity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cobalt::cluster {
namespace {

TEST(Capacity, UniformIsAllOnes) {
  const auto c = make_capacities(CapacityProfile::kUniform, 5);
  ASSERT_EQ(c.size(), 5u);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Capacity, TwoGenerationsSplitsInHalf) {
  const auto c = make_capacities(CapacityProfile::kTwoGenerations, 6);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 2.0);
  EXPECT_DOUBLE_EQ(c[5], 2.0);
}

TEST(Capacity, ThreeTiersQuadruplesTheTop) {
  const auto c = make_capacities(CapacityProfile::kThreeTiers, 9);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 2.0);
  EXPECT_DOUBLE_EQ(c[8], 4.0);
}

TEST(Capacity, LinearRampSpansOneToTwo) {
  const auto c = make_capacities(CapacityProfile::kLinearRamp, 5);
  EXPECT_DOUBLE_EQ(c.front(), 1.0);
  EXPECT_DOUBLE_EQ(c.back(), 2.0);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GT(c[i], c[i - 1]);
}

TEST(Capacity, PowerLawSmallestIsOne) {
  const auto c = make_capacities(CapacityProfile::kPowerLaw, 8);
  EXPECT_DOUBLE_EQ(c.front(), 8.0);  // biggest first
  EXPECT_DOUBLE_EQ(c.back(), 1.0);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_LT(c[i], c[i - 1]);
}

TEST(Capacity, SingleNodeClusterWorksForAllProfiles) {
  for (const auto profile :
       {CapacityProfile::kUniform, CapacityProfile::kTwoGenerations,
        CapacityProfile::kThreeTiers, CapacityProfile::kLinearRamp,
        CapacityProfile::kPowerLaw}) {
    const auto c = make_capacities(profile, 1);
    ASSERT_EQ(c.size(), 1u) << profile_name(profile);
    EXPECT_GE(c[0], 1.0);
  }
}

TEST(Capacity, VnodesForCapacityRoundsAndFloors) {
  EXPECT_EQ(vnodes_for_capacity(4, 1.0), 4u);
  EXPECT_EQ(vnodes_for_capacity(4, 2.0), 8u);
  EXPECT_EQ(vnodes_for_capacity(4, 1.6), 6u);
  EXPECT_EQ(vnodes_for_capacity(4, 0.01), 1u);
  EXPECT_THROW((void)vnodes_for_capacity(0, 1.0), InvalidArgument);
  EXPECT_THROW((void)vnodes_for_capacity(4, -1.0), InvalidArgument);
}

TEST(Capacity, ProfileNamesAreDistinct) {
  EXPECT_NE(profile_name(CapacityProfile::kUniform),
            profile_name(CapacityProfile::kPowerLaw));
  EXPECT_EQ(profile_name(CapacityProfile::kThreeTiers), "three-tiers");
}

TEST(Capacity, RejectsEmptyCluster) {
  EXPECT_THROW((void)make_capacities(CapacityProfile::kUniform, 0),
               InvalidArgument);
}

}  // namespace
}  // namespace cobalt::cluster
