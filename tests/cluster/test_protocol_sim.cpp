// Tests for the creation-protocol DES: trace recording and replay.

#include "cluster/protocol_sim.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cobalt::cluster {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(ProtocolTrace, GlobalIsSingleDomainFullParticipation) {
  const auto trace = record_global_trace(cfg(8, 1, 1), 16, 40);
  EXPECT_EQ(trace.snodes, 16u);
  EXPECT_EQ(trace.domains, 1u);
  ASSERT_EQ(trace.creations.size(), 40u);
  for (const auto& creation : trace.creations) {
    EXPECT_EQ(creation.domain, 0u);
    EXPECT_EQ(creation.participants, 16u);
    EXPECT_TRUE(creation.spawned_domains.empty());
  }
}

TEST(ProtocolTrace, LocalRoundsAreGroupSized) {
  const auto trace = record_local_trace(cfg(8, 4, 2), 16, 128);
  ASSERT_EQ(trace.creations.size(), 128u);
  for (const auto& creation : trace.creations) {
    EXPECT_LE(creation.participants, 16u);
    EXPECT_GE(creation.participants, 1u);
    EXPECT_LT(creation.domain, trace.domains);
  }
  // Once groups form, rounds are bounded by Vmax = 8 members' hosts.
  double mean = 0.0;
  for (std::size_t i = 64; i < 128; ++i) {
    mean += static_cast<double>(trace.creations[i].participants);
  }
  mean /= 64.0;
  EXPECT_LE(mean, 8.0);
}

TEST(ProtocolTrace, SplitsSpawnDomainPairs) {
  const auto trace = record_local_trace(cfg(8, 4, 3), 8, 64);
  EXPECT_GT(trace.domains, 1u);
  std::size_t spawned = 0;
  for (const auto& creation : trace.creations) {
    EXPECT_TRUE(creation.spawned_domains.empty() ||
                creation.spawned_domains.size() == 2);
    spawned += creation.spawned_domains.size();
  }
  // Every domain except the root was spawned by exactly one split.
  EXPECT_EQ(spawned + 1, trace.domains);
}

TEST(ProtocolTrace, TransfersAreRecorded) {
  const auto trace = record_local_trace(cfg(8, 4, 3), 4, 32);
  std::uint64_t total = 0;
  for (const auto& c : trace.creations) total += c.transfers;
  // Every creation after the first at least receives partitions.
  EXPECT_GT(total, 31u);
}

TEST(ProtocolReplay, SingleDomainSerializes) {
  CreationTrace trace;
  trace.snodes = 4;
  trace.domains = 1;
  for (int i = 0; i < 10; ++i) {
    trace.creations.push_back(CreationRecord{0, 4, 2, {}});
  }
  NetworkModel net;
  const auto result = replay_trace(trace, net);
  const SimTime round = net.round_duration(4, 2);
  EXPECT_DOUBLE_EQ(result.makespan_us, 10.0 * round);
  EXPECT_NEAR(result.concurrency, 1.0, 1e-9);  // strictly serial
  EXPECT_EQ(result.messages, 10 * net.round_messages(4, 2));
}

TEST(ProtocolReplay, DisjointDomainsOverlapPerfectly) {
  CreationTrace trace;
  trace.snodes = 8;
  trace.domains = 4;
  for (std::uint32_t d = 0; d < 4; ++d) {
    trace.creations.push_back(CreationRecord{d, 2, 1, {}});
  }
  NetworkModel net;
  const auto result = replay_trace(trace, net);
  EXPECT_DOUBLE_EQ(result.makespan_us, net.round_duration(2, 1));
  EXPECT_NEAR(result.concurrency, 4.0, 1e-9);
}

TEST(ProtocolReplay, SpawnedDomainsInheritTheSplitClock) {
  CreationTrace trace;
  trace.snodes = 4;
  trace.domains = 3;
  // Round in domain 0 splits it into 1 and 2 ...
  trace.creations.push_back(CreationRecord{1, 2, 0, {1, 2}});
  // ... so a later round in domain 2 cannot start before it completes.
  trace.creations.push_back(CreationRecord{2, 2, 0, {}});
  NetworkModel net;
  const auto result = replay_trace(trace, net);
  EXPECT_DOUBLE_EQ(result.makespan_us, 2.0 * net.round_duration(2, 0));
}

TEST(ProtocolReplay, LocalBeatsGlobalOnMakespanAndMessages) {
  // The headline scalability property: for the same growth, the local
  // approach completes far sooner (concurrent groups) and exchanges
  // fewer messages (group-sized rounds).
  const std::size_t snodes = 32;
  const std::size_t vnodes = 256;
  const auto global_trace = record_global_trace(cfg(8, 1, 5), snodes, vnodes);
  const auto local_trace = record_local_trace(cfg(8, 4, 5), snodes, vnodes);
  NetworkModel net;
  const auto global_result = replay_trace(global_trace, net);
  const auto local_result = replay_trace(local_trace, net);
  EXPECT_LT(local_result.makespan_us, 0.5 * global_result.makespan_us);
  EXPECT_LT(local_result.messages, global_result.messages);
  EXPECT_LT(local_result.mean_participants,
            global_result.mean_participants);
  EXPECT_GT(local_result.concurrency, 1.5);
}

TEST(ProtocolReplay, RejectsCorruptTraces) {
  CreationTrace trace;
  trace.snodes = 2;
  trace.domains = 1;
  trace.creations.push_back(CreationRecord{7, 1, 0, {}});  // bad domain
  EXPECT_THROW((void)replay_trace(trace, NetworkModel{}), InvalidArgument);
}

TEST(ProtocolReplay, ReportsTheSerializedRoundDepth) {
  // 6 rounds in one domain, 2 in another: the longest chain is 6.
  CreationTrace trace;
  trace.snodes = 4;
  trace.domains = 2;
  for (int i = 0; i < 6; ++i) {
    trace.creations.push_back(CreationRecord{0, 2, 1, {}});
  }
  for (int i = 0; i < 2; ++i) {
    trace.creations.push_back(CreationRecord{1, 2, 1, {}});
  }
  const auto result = replay_trace(trace, NetworkModel{});
  EXPECT_EQ(result.serialized_round_depth, 6u);
}

TEST(ScheduleRounds, EmptyLogIsZero) {
  const ScheduleOutcome outcome = schedule_rounds({});
  EXPECT_DOUBLE_EQ(outcome.makespan_us, 0.0);
  EXPECT_EQ(outcome.rounds, 0u);
  EXPECT_EQ(outcome.messages, 0u);
  EXPECT_EQ(outcome.domains_used, 0u);
}

TEST(ScheduleRounds, ArrivalTimesGateAdmission) {
  // A round arriving at t=1000 cannot start earlier even though its
  // domain is free; an already-queued domain ignores a past arrival.
  std::vector<Round> rounds;
  rounds.push_back(Round{0, 0.0, 100.0, 1, {}});
  rounds.push_back(Round{0, 1000.0, 100.0, 1, {}});
  rounds.push_back(Round{1, 50.0, 25.0, 1, {}});
  const ScheduleOutcome outcome = schedule_rounds(rounds);
  EXPECT_DOUBLE_EQ(outcome.makespan_us, 1100.0);
  EXPECT_EQ(outcome.rounds, 3u);
  EXPECT_EQ(outcome.messages, 3u);
  EXPECT_EQ(outcome.serialized_round_depth, 2u);
  EXPECT_EQ(outcome.domains_used, 2u);
}

TEST(ScheduleRounds, SpawnedDomainsNeverRewindTheirClock) {
  // A spawn completing at t=100 must not pull a busier spawned domain
  // backward (max, not overwrite).
  std::vector<Round> rounds;
  rounds.push_back(Round{1, 0.0, 500.0, 1, {}});   // domain 1 busy to 500
  rounds.push_back(Round{0, 0.0, 100.0, 1, {1}});  // spawns 1 at t=100
  rounds.push_back(Round{1, 0.0, 10.0, 1, {}});    // queues behind 500
  const ScheduleOutcome outcome = schedule_rounds(rounds);
  EXPECT_DOUBLE_EQ(outcome.makespan_us, 510.0);
}

TEST(ScheduleRounds, RejectsNegativeTimes) {
  std::vector<Round> rounds;
  rounds.push_back(Round{0, -1.0, 10.0, 1, {}});
  EXPECT_THROW((void)schedule_rounds(rounds), InvalidArgument);
  rounds.clear();
  rounds.push_back(Round{0, 0.0, -5.0, 1, {}});
  EXPECT_THROW((void)schedule_rounds(rounds), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::cluster
