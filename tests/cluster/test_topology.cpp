// Tests for the failure-domain map (cluster/topology.hpp) and the two
// layers that consume it: tiered network pricing (cluster/network.hpp)
// and the topology-aware FaultPlan helpers (crash_rack /
// partition_rack / partition_zone). The load-bearing contracts:
//
//   * unassigned nodes are synthetic singleton domains - never a
//     shared rack, never raising spread_bound;
//   * at default (flat) pricing, every tiered overload reproduces the
//     flat model's numbers exactly (the pre-topology benches stay
//     byte-identical);
//   * the multicast repair tree pays one cross-rack leg per distinct
//     remote rack, plain unicast one per remote participant.

#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/fault_injection.hpp"
#include "cluster/network.hpp"
#include "common/error.hpp"

namespace cobalt::cluster {
namespace {

// --- Topology --------------------------------------------------------

TEST(Topology, AssignAndLookUp) {
  Topology topo;
  topo.assign(0, /*rack=*/10, /*zone=*/1);
  topo.assign(1, 10, 1);
  topo.assign(2, 11, 1);
  topo.assign(3, 12, 2);

  EXPECT_EQ(topo.rack_of(0), 10u);
  EXPECT_EQ(topo.rack_of(3), 12u);
  EXPECT_EQ(topo.zone_of(0), 1u);
  EXPECT_EQ(topo.zone_of(3), 2u);
  EXPECT_TRUE(topo.same_rack(0, 1));
  EXPECT_FALSE(topo.same_rack(0, 2));
  EXPECT_TRUE(topo.same_zone(0, 2));
  EXPECT_FALSE(topo.same_zone(0, 3));
  EXPECT_EQ(topo.rack_size(10), 2u);
  EXPECT_EQ(topo.rack_size(11), 1u);
  EXPECT_EQ(topo.racks(), (std::vector<Topology::RackId>{10, 11, 12}));
  EXPECT_EQ(topo.nodes_in_rack(10), (std::vector<placement::NodeId>{0, 1}));
  EXPECT_EQ(topo.nodes_in_zone(1),
            (std::vector<placement::NodeId>{0, 1, 2}));
}

TEST(Topology, UnassignedNodesAreSyntheticSingletonDomains) {
  Topology topo;
  topo.assign(0, 5);
  // A node outside the map is its own rack (and zone): it never shares
  // a failure domain, so the spread filter treats it as safe.
  EXPECT_NE(topo.rack_of(99), topo.rack_of(98));
  EXPECT_TRUE(topo.same_rack(99, 99));
  EXPECT_FALSE(topo.same_rack(99, 98));
  EXPECT_FALSE(topo.same_rack(0, 99));
  EXPECT_FALSE(topo.same_zone(0, 99));
  // Synthetic ids live outside the explicit map's accounting.
  EXPECT_EQ(topo.racks(), (std::vector<Topology::RackId>{5}));
}

TEST(Topology, UniformLayoutIsDenseRowMajor) {
  // uniform(racks, nodes_per_rack, zones): node n sits in rack n /
  // nodes_per_rack, rack r in zone r % zones.
  const Topology topo = Topology::uniform(4, 3, 2);
  EXPECT_EQ(topo.racks().size(), 4u);
  for (placement::NodeId n = 0; n < 12; ++n) {
    EXPECT_EQ(topo.rack_of(n), n / 3) << "node " << n;
    EXPECT_EQ(topo.zone_of(n), (n / 3) % 2) << "node " << n;
  }
  EXPECT_EQ(topo.rack_size(0), 3u);
  EXPECT_EQ(topo.nodes_in_rack(2), (std::vector<placement::NodeId>{6, 7, 8}));
  EXPECT_EQ(topo.nodes_in_zone(0),
            (std::vector<placement::NodeId>{0, 1, 2, 6, 7, 8}));
}

TEST(Topology, SpreadBoundIsThePigeonholeDepth) {
  // 3 racks of 4: k-1 largest domains hold 4 (k=2) / 8 (k=3) nodes, so
  // one more candidate must cross into a fresh rack.
  const Topology topo = Topology::uniform(3, 4);
  EXPECT_EQ(topo.spread_bound(1), 1u);
  EXPECT_EQ(topo.spread_bound(2), 5u);
  EXPECT_EQ(topo.spread_bound(3), 9u);
  // Zones of 6 nodes each (2 zones x 3 racks... uniform(4,3,2) maps 2
  // racks per zone): the by_zone bound uses zone sizes.
  const Topology zoned = Topology::uniform(4, 3, 2);
  EXPECT_EQ(zoned.spread_bound(2, /*by_zone=*/true), 7u);
  // An empty map is all singletons: the bound degenerates to k.
  const Topology empty;
  EXPECT_EQ(empty.spread_bound(3), 3u);
}

// --- NetworkModel tier pricing --------------------------------------

TEST(NetworkTiers, DefaultsInheritTheFlatModelExactly) {
  const NetworkModel net;  // tier overrides all 0 = inherit
  EXPECT_DOUBLE_EQ(net.cross_rack_latency(), net.intra_rack_latency());
  EXPECT_DOUBLE_EQ(net.cross_zone_latency(), net.intra_rack_latency());
  EXPECT_DOUBLE_EQ(net.cross_rack_per_key(), net.intra_rack_per_key());

  // With flat tiers the tiered handover equals the flat handover for
  // any participant mix - the abl8/abl9 byte-parity guarantee.
  const Topology topo = Topology::uniform(3, 2);
  const std::vector<placement::NodeId> participants{0, 2, 5};
  EXPECT_DOUBLE_EQ(net.handover_duration_tiered(topo, participants, 100),
                   net.handover_duration(participants.size(), 100));
}

TEST(NetworkTiers, CrossZoneInheritsCrossRackWhenUnset) {
  NetworkModel net;
  net.cross_rack_latency_us = 400.0;
  EXPECT_DOUBLE_EQ(net.cross_zone_latency(), 400.0);
  net.cross_zone_latency_us = 900.0;
  EXPECT_DOUBLE_EQ(net.cross_zone_latency(), 900.0);
}

TEST(NetworkTiers, TieredHandoverChargesTheWorstTier) {
  NetworkModel net;
  net.one_hop_latency_us = 100.0;
  net.cross_rack_latency_us = 400.0;
  net.cross_zone_latency_us = 1000.0;
  net.record_update_us = 0.0;
  net.per_key_transfer_us = 0.0;
  // Zones interleave: rack r sits in zone r % 2, so racks 0 and 2
  // share zone 0 while rack 1 is a zone away from both.
  const Topology topo = Topology::uniform(4, 2, 2);

  // All in the coordinator's rack: intra pricing.
  EXPECT_DOUBLE_EQ(
      net.handover_duration_tiered(topo, std::vector<placement::NodeId>{0, 1},
                                   0),
      200.0);
  // One participant a rack over (same zone): 2 x 400.
  EXPECT_DOUBLE_EQ(
      net.handover_duration_tiered(topo, std::vector<placement::NodeId>{0, 4},
                                   0),
      800.0);
  // One participant a zone over dominates: 2 x 1000.
  EXPECT_DOUBLE_EQ(net.handover_duration_tiered(
                       topo, std::vector<placement::NodeId>{0, 4, 2}, 0),
                   2000.0);
}

TEST(NetworkTiers, MulticastPaysPerRackNotPerParticipant) {
  NetworkModel net;
  net.one_hop_latency_us = 100.0;
  net.cross_rack_latency_us = 400.0;
  net.record_update_us = 0.0;
  net.per_key_transfer_us = 0.0;
  const Topology topo = Topology::uniform(2, 3);
  // Coordinator in rack 0, two participants in rack 1: the tree sends
  // one cross-rack leg to a relay, which fans out intra-rack.
  const std::vector<placement::NodeId> participants{0, 3, 4};
  EXPECT_DOUBLE_EQ(net.handover_duration_tiered(topo, participants, 0),
                   800.0);  // unicast: worst tier is cross-rack
  EXPECT_DOUBLE_EQ(net.multicast_handover_duration(topo, participants, 0),
                   2.0 * (400.0 + 100.0));  // root leg + intra relay

  // The cross-rack meter: 2 legs per remote participant unicast, 2 per
  // distinct remote rack multicast.
  EXPECT_EQ(net.cross_rack_messages(topo, participants, false), 4u);
  EXPECT_EQ(net.cross_rack_messages(topo, participants, true), 2u);

  // A single remote participant needs no relay: tree == unicast.
  const std::vector<placement::NodeId> lone{0, 3};
  EXPECT_DOUBLE_EQ(net.multicast_handover_duration(topo, lone, 0), 800.0);

  // All-local rounds pay no cross-rack legs at all.
  const std::vector<placement::NodeId> local{0, 1, 2};
  EXPECT_EQ(net.cross_rack_messages(topo, local, false), 0u);
  EXPECT_EQ(net.cross_rack_messages(topo, local, true), 0u);
}

// --- FaultPlan topology helpers -------------------------------------

TEST(FaultPlanTopology, CrashRackCrashesEveryMember) {
  const Topology topo = Topology::uniform(2, 3);
  FaultPlan plan(11);
  plan.crash_rack(topo, 1, 100.0, 200.0);
  ASSERT_EQ(plan.crash_windows().size(), 3u);
  std::vector<placement::NodeId> crashed;
  for (const CrashWindow& window : plan.crash_windows()) {
    EXPECT_DOUBLE_EQ(window.crash_at, 100.0);
    EXPECT_DOUBLE_EQ(window.recover_at, 200.0);
    crashed.push_back(window.node);
  }
  EXPECT_EQ(crashed, (std::vector<placement::NodeId>{3, 4, 5}));
  EXPECT_TRUE(plan.node_down(4, 150.0));
  EXPECT_FALSE(plan.node_down(0, 150.0));
}

TEST(FaultPlanTopology, PartitionRackCutsTheWholeRack) {
  const Topology topo = Topology::uniform(3, 2);
  FaultPlan plan(13);
  plan.partition_rack(topo, 2, 50.0, 90.0);
  ASSERT_EQ(plan.partitions().size(), 1u);
  const PartitionEpisode& episode = plan.partitions().front();
  EXPECT_EQ(episode.name, "rack-2");
  EXPECT_DOUBLE_EQ(episode.start, 50.0);
  EXPECT_DOUBLE_EQ(episode.end, 90.0);
  EXPECT_EQ(episode.side, (std::vector<placement::NodeId>{4, 5}));
}

TEST(FaultPlanTopology, PartitionZoneCutsEveryRackOfTheZone) {
  const Topology topo = Topology::uniform(4, 2, 2);  // zone 0 = racks 0, 2
  FaultPlan plan(17);
  plan.partition_zone(topo, 0, 10.0, 20.0);
  ASSERT_EQ(plan.partitions().size(), 1u);
  const PartitionEpisode& episode = plan.partitions().front();
  EXPECT_EQ(episode.name, "zone-0");
  EXPECT_EQ(episode.side, (std::vector<placement::NodeId>{0, 1, 4, 5}));
}

TEST(FaultPlanTopology, EmptyRackIsRejected) {
  const Topology topo = Topology::uniform(2, 2);
  FaultPlan plan(19);
  EXPECT_THROW(plan.crash_rack(topo, 7, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(plan.partition_rack(topo, 7, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(plan.partition_zone(topo, 7, 0.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::cluster
