// Tests for the message-level fault-injection layer
// (cluster/fault_injection.hpp): FaultPlan window/partition semantics
// and stateless draws, the executor's clean-execution invariants
// (priced message count and makespan reproduced exactly, zero retries),
// abort/re-plan/abandon behavior under total loss, and bit-identical
// determinism of fault-injected churn across all seven backends.

#include "cluster/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/protocol_driver.hpp"
#include "kv/store.hpp"
#include "sim/protocol_cost.hpp"

namespace cobalt::cluster {
namespace {

// --- FaultPlan -------------------------------------------------------

TEST(FaultPlan, CrashWindowsGateAvailability) {
  FaultPlan plan(7);
  plan.add_crash_window(3, 100.0, 200.0);
  EXPECT_FALSE(plan.node_down(3, 99.0));
  EXPECT_TRUE(plan.node_down(3, 100.0));
  EXPECT_TRUE(plan.node_down(3, 199.0));
  EXPECT_FALSE(plan.node_down(3, 200.0));  // [start, end)
  EXPECT_FALSE(plan.node_down(4, 150.0));

  EXPECT_FALSE(plan.available(3, 150.0));
  EXPECT_TRUE(plan.available(3, 250.0));
  EXPECT_DOUBLE_EQ(plan.next_available(3, 150.0), 200.0);
  EXPECT_DOUBLE_EQ(plan.next_available(3, 50.0), 50.0);
}

TEST(FaultPlan, CrashWithoutRecoveryIsPermanent) {
  FaultPlan plan(7);
  plan.add_crash_window(1, 10.0);
  EXPECT_TRUE(plan.node_down(1, 1e12));
  EXPECT_TRUE(std::isinf(plan.next_available(1, 20.0)));
}

TEST(FaultPlan, PartitionCutsCrossSideLinksAndClientReach) {
  FaultPlan plan(7);
  plan.add_partition("minority", 100.0, 300.0, {1, 2});

  // Cross-side links cut during the episode only.
  EXPECT_TRUE(plan.link_cut(1, 5, 150.0));
  EXPECT_TRUE(plan.link_cut(5, 2, 150.0));
  EXPECT_FALSE(plan.link_cut(1, 5, 99.0));
  EXPECT_FALSE(plan.link_cut(1, 5, 300.0));
  // Links inside one side keep working.
  EXPECT_FALSE(plan.link_cut(1, 2, 150.0));
  EXPECT_FALSE(plan.link_cut(4, 5, 150.0));

  // The minority side is unreachable from clients; the majority serves.
  EXPECT_FALSE(plan.available(1, 150.0));
  EXPECT_TRUE(plan.available(5, 150.0));
  EXPECT_DOUBLE_EQ(plan.next_available(2, 150.0), 300.0);
}

TEST(FaultPlan, DrawsAreStatelessAndMonotoneInProbability) {
  FaultPlan low(42);
  low.set_default_link({.drop = 0.01});
  FaultPlan high(42);
  high.set_default_link({.drop = 0.2});

  int dropped_low = 0;
  int dropped_high = 0;
  for (std::uint64_t token = 0; token < 5000; ++token) {
    const bool lo = low.dropped(0, 1, token);
    const bool hi = high.dropped(0, 1, token);
    dropped_low += lo;
    dropped_high += hi;
    // Same seed, same token: a message lost at 1% is lost at 20%.
    if (lo) {
      EXPECT_TRUE(hi);
    }
    // Stateless: asking again changes nothing.
    EXPECT_EQ(low.dropped(0, 1, token), lo);
  }
  EXPECT_GT(dropped_low, 0);
  EXPECT_GT(dropped_high, dropped_low);
  EXPECT_LT(dropped_high, 2000);  // ~20% of 5000, not everything
}

TEST(FaultPlan, LinkOverridesBeatTheDefault) {
  FaultPlan plan(9);
  plan.set_default_link({.drop = 0.0});
  plan.set_link(2, 3, {.drop = 1.0});
  EXPECT_TRUE(plan.dropped(2, 3, 77));
  EXPECT_FALSE(plan.dropped(3, 2, 77));
  EXPECT_FALSE(plan.dropped(2, 4, 77));
}

TEST(FaultPlan, JitterStaysInsideTheConfiguredSpan) {
  FaultPlan plan(11);
  plan.set_default_link({.delay_jitter_us = 50.0});
  for (std::uint64_t token = 0; token < 1000; ++token) {
    const SimTime jitter = plan.jitter_us(0, 1, token);
    EXPECT_GE(jitter, 0.0);
    EXPECT_LT(jitter, 50.0);
  }
  FaultPlan none(11);
  EXPECT_DOUBLE_EQ(none.jitter_us(0, 1, 5), 0.0);
}

// --- executor: clean execution ---------------------------------------

std::vector<FaultRound> two_domain_rounds() {
  std::vector<FaultRound> rounds;
  {
    FaultRound round;
    round.domain = 0;
    round.coordinator = 0;
    round.participants = {0, 1, 2};
    round.payload_keys = 100;
    round.payload_ranges = 2;
    round.local_work_us = 6.0;
    rounds.push_back(round);
  }
  {
    FaultRound round;
    round.domain = 1;
    round.arrival = 10.0;
    round.coordinator = 3;
    round.participants = {3, 4};
    round.payload_keys = 40;
    round.payload_ranges = 1;
    round.local_work_us = 4.0;
    rounds.push_back(round);
  }
  {
    FaultRound round;  // pure-local bookkeeping
    round.domain = 2;
    round.local_work_us = 2.0;
    rounds.push_back(round);
  }
  return rounds;
}

TEST(FaultExecutor, CleanRunSendsExactlyThePricedMessages) {
  const auto rounds = two_domain_rounds();
  const FaultPlan clean(1);
  const FaultExecOutcome out = execute_rounds(rounds, clean);

  EXPECT_EQ(out.rounds, 3u);
  EXPECT_EQ(out.completed_rounds, 3u);
  EXPECT_EQ(out.aborted_rounds, 0u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.messages_dropped, 0u);
  EXPECT_EQ(out.duplicates_delivered, 0u);
  // 2*3 + 2  +  2*2 + 1  +  0  == the handover_messages pricing.
  EXPECT_EQ(out.messages_sent, clean_message_count(rounds));
  EXPECT_EQ(out.messages_sent, 13u);
}

TEST(FaultExecutor, CleanRoundDurationMatchesThePricedModel) {
  std::vector<FaultRound> rounds;
  FaultRound round;
  round.domain = 0;
  round.coordinator = 0;
  round.participants = {0, 1, 2};
  round.payload_keys = 200;
  round.payload_ranges = 3;
  round.local_work_us = 3.0 * NetworkModel{}.record_update_us;
  rounds.push_back(round);

  const FaultPlan clean(1);
  const FaultExecOutcome out = execute_rounds(rounds, clean);
  const NetworkModel net;
  // sync (2 hops) + serialized payload + local work, exactly.
  EXPECT_NEAR(out.makespan_us,
              net.handover_duration(3, 200), 1e-9);
}

TEST(FaultExecutor, SameDomainRoundsQueueFifo) {
  std::vector<FaultRound> rounds;
  for (int i = 0; i < 2; ++i) {
    FaultRound round;
    round.domain = 5;
    round.coordinator = 0;
    round.participants = {0, 1};
    round.local_work_us = 10.0;
    rounds.push_back(round);
  }
  const FaultPlan clean(1);
  const FaultExecOutcome out = execute_rounds(rounds, clean);
  const NetworkModel net;
  // Two rounds of (2 hops + local 10) back to back in one domain.
  EXPECT_NEAR(out.makespan_us, 2.0 * (2.0 * net.one_hop_latency_us + 10.0),
              1e-9);
}

// --- executor: loss, aborts, re-plans --------------------------------

TEST(FaultExecutor, TotalLossAbortsReplansAndFinallyAbandons) {
  std::vector<FaultRound> rounds;
  FaultRound round;
  round.domain = 0;
  round.coordinator = 0;
  round.participants = {0, 1};
  round.payload_keys = 50;
  round.payload_ranges = 1;
  rounds.push_back(round);

  FaultPlan lossy(3);
  lossy.set_default_link({.drop = 1.0});
  FaultExecutorOptions options;
  options.max_replans = 2;
  const FaultExecOutcome out = execute_rounds(rounds, lossy, options);

  // Original + two re-plans all admitted, all aborted, none completed.
  EXPECT_EQ(out.rounds, 3u);
  EXPECT_EQ(out.completed_rounds, 0u);
  EXPECT_EQ(out.aborted_rounds, 3u);
  EXPECT_EQ(out.replanned_rounds, 2u);
  EXPECT_EQ(out.abandoned_rounds, 1u);
  EXPECT_EQ(out.payload_keys_replanned, 100u);
  EXPECT_EQ(out.payload_keys_abandoned, 50u);
  // Every transmission was lost; retries ran the backoff budget down.
  EXPECT_EQ(out.messages_sent, out.messages_dropped);
  EXPECT_GT(out.retries, 0u);
}

TEST(FaultExecutor, PureLocalRoundsCannotFail) {
  std::vector<FaultRound> rounds(4);
  for (auto& round : rounds) round.local_work_us = 1.0;
  FaultPlan lossy(3);
  lossy.set_default_link({.drop = 1.0});
  const FaultExecOutcome out = execute_rounds(rounds, lossy);
  EXPECT_EQ(out.completed_rounds, 4u);
  EXPECT_EQ(out.messages_sent, 0u);
  EXPECT_EQ(out.aborted_rounds, 0u);
}

TEST(FaultExecutor, ModerateLossInflatesMakespanMonotonically) {
  const auto rounds = two_domain_rounds();
  const FaultPlan clean(5);
  FaultPlan loss1(5);
  loss1.set_default_link({.drop = 0.01});
  FaultPlan loss10(5);
  loss10.set_default_link({.drop = 0.10});

  const FaultExecOutcome base = execute_rounds(rounds, clean);
  const FaultExecOutcome low = execute_rounds(rounds, loss1);
  const FaultExecOutcome high = execute_rounds(rounds, loss10);
  // Same seed, superset token losses: messages and makespan only grow.
  EXPECT_GE(low.messages_sent, base.messages_sent);
  EXPECT_GE(high.messages_sent, low.messages_sent);
  EXPECT_GE(low.makespan_us, base.makespan_us - 1e-9);
  EXPECT_GE(high.makespan_us, low.makespan_us - 1e-9);
}

TEST(FaultExecutor, CrashWindowDefersTheRoundToRecovery) {
  std::vector<FaultRound> rounds;
  FaultRound round;
  round.domain = 0;
  round.coordinator = 0;
  round.participants = {0, 1};
  rounds.push_back(round);

  FaultPlan plan(4);
  plan.add_crash_window(1, 0.0, 5000.0);  // down across the first tries
  FaultExecutorOptions options;
  options.backoff.jitter = 0.0;  // exact retry times: sends at 0, 600,
                                 // 1400, 2600, 4600 all hit the window
  options.max_replans = 4;
  options.replan_delay_us = 3000.0;
  const FaultExecOutcome out = execute_rounds(rounds, plan, options);

  // The first admission aborts against the dead peer; a re-plan after
  // recovery completes.
  EXPECT_EQ(out.completed_rounds, 1u);
  EXPECT_GE(out.aborted_rounds, 1u);
  EXPECT_EQ(out.abandoned_rounds, 0u);
  EXPECT_GT(out.makespan_us, 5000.0);
}

// --- determinism across the seven backends ---------------------------

std::vector<std::string> make_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  return keys;
}

dht::Config dht_cfg(std::uint64_t pmin, std::uint64_t vmin,
                    std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Serializes every counter of a fault-injected churn run the way
/// abl11's CSV does, so equality means byte-identical output.
std::string fingerprint(const sim::FaultyProtocolChurnOutcome& out) {
  std::ostringstream row;
  row << out.completed_removals << ',' << out.refused_removals << ','
      << out.exec.rounds << ',' << out.exec.completed_rounds << ','
      << out.exec.aborted_rounds << ',' << out.exec.replanned_rounds << ','
      << out.exec.abandoned_rounds << ',' << out.exec.messages_sent << ','
      << out.exec.messages_dropped << ',' << out.exec.retries << ','
      << out.exec.duplicates_delivered << ',' << out.clean_messages << ','
      << out.exec.makespan_us << ',' << out.clean_schedule.makespan_us;
  return row.str();
}

/// Two identical fault-injected churn runs must agree bit for bit,
/// and the clean plan must reproduce the priced schedule exactly.
template <typename StoreT, typename MakeStore>
void expect_fault_determinism(MakeStore make) {
  FaultPlan lossy(99);
  lossy.set_default_link({.drop = 0.05, .duplicate = 0.01});
  FaultExecutorOptions options;
  options.backoff.jitter = 0.25;

  const auto keys = make_keys(600);
  auto run = [&](const FaultPlan& plan) {
    StoreT store = make();
    return sim::run_faulty_protocol_churn(store, 10, 8, keys, /*seed=*/321,
                                          plan, options,
                                          /*inter_event_gap_us=*/500.0);
  };

  const auto first = run(lossy);
  const auto second = run(lossy);
  EXPECT_TRUE(first.exec == second.exec);
  EXPECT_EQ(fingerprint(first), fingerprint(second));

  // Clean plan: the message-level execution reproduces the priced
  // schedule - same message count, same makespan, nothing retried.
  const FaultPlan clean(99);
  const auto base = run(clean);
  EXPECT_EQ(base.exec.retries, 0u);
  EXPECT_EQ(base.exec.aborted_rounds, 0u);
  EXPECT_EQ(base.exec.messages_sent, base.clean_messages);
  EXPECT_EQ(base.exec.messages_sent, base.clean_schedule.messages);
  EXPECT_NEAR(base.exec.makespan_us, base.clean_schedule.makespan_us, 1e-6);

  // The lossy run can only add traffic on top of the clean baseline.
  EXPECT_GE(first.exec.messages_sent, base.exec.messages_sent);
}

TEST(FaultDeterminism, LocalDht) {
  expect_fault_determinism<kv::KvStore>(
      [] { return kv::KvStore({dht_cfg(32, 8, 41), 1}, 2); });
}

TEST(FaultDeterminism, GlobalDht) {
  expect_fault_determinism<kv::GlobalKvStore>(
      [] { return kv::GlobalKvStore({dht_cfg(32, 1, 42), 1}, 2); });
}

TEST(FaultDeterminism, ConsistentHashing) {
  expect_fault_determinism<kv::ChKvStore>(
      [] { return kv::ChKvStore({43, 16}, 2); });
}

TEST(FaultDeterminism, Rendezvous) {
  expect_fault_determinism<kv::HrwKvStore>(
      [] { return kv::HrwKvStore({44, 10}, 2); });
}

TEST(FaultDeterminism, Jump) {
  expect_fault_determinism<kv::JumpKvStore>(
      [] { return kv::JumpKvStore({45, 10}, 2); });
}

TEST(FaultDeterminism, Maglev) {
  expect_fault_determinism<kv::MaglevKvStore>(
      [] { return kv::MaglevKvStore({46, 10}, 2); });
}

TEST(FaultDeterminism, BoundedCh) {
  expect_fault_determinism<kv::BoundedChKvStore>(
      [] { return kv::BoundedChKvStore({47, 16, 0.1, 10}, 2); });
}

}  // namespace
}  // namespace cobalt::cluster
