// Tests for the message-level distributed execution of the creation
// protocol: convergence, replica consistency, invariants under
// concurrency, and agreement with the centralized balancer's behaviour.

#include "cluster/distributed.hpp"

#include <gtest/gtest.h>

#include "sim/growth.hpp"

namespace cobalt::cluster {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(DistributedDht, BootstrapThenOneCreation) {
  DistributedDht dht(cfg(8, 4, 1), 2);
  dht.submit_create(0);
  dht.submit_create(1);
  const RunStats stats = dht.run();
  EXPECT_EQ(dht.vnode_count(), 2u);
  EXPECT_EQ(dht.group_count(), 1u);
  EXPECT_EQ(stats.rounds, 1u);  // the bootstrap is local, one round after
  EXPECT_GT(stats.messages, 0u);
  dht.audit();
  // Two vnodes at V = 2 = 2^1: perfectly balanced (G5').
  EXPECT_NEAR(dht.sigma_qv(), 0.0, 1e-12);
}

TEST(DistributedDht, ConvergesAtModerateScale) {
  constexpr std::size_t kSnodes = 8;
  constexpr std::size_t kVnodes = 120;
  DistributedDht dht(cfg(8, 4, 7), kSnodes);
  for (std::size_t v = 0; v < kVnodes; ++v) {
    dht.submit_create(static_cast<dht::SNodeId>(v % kSnodes));
  }
  const RunStats stats = dht.run();
  EXPECT_EQ(dht.vnode_count(), kVnodes);
  EXPECT_EQ(stats.rounds, kVnodes - 1);  // every non-bootstrap creation
  EXPECT_GT(stats.group_splits, 4u);
  EXPECT_GT(dht.group_count(), 4u);
  dht.audit();
}

TEST(DistributedDht, GroupsRunConcurrently) {
  // With many groups and simultaneous submissions, rounds overlap.
  constexpr std::size_t kSnodes = 16;
  DistributedDht dht(cfg(8, 4, 11), kSnodes);
  for (std::size_t v = 0; v < 200; ++v) {
    dht.submit_create(static_cast<dht::SNodeId>(v % kSnodes));
  }
  const RunStats stats = dht.run();
  dht.audit();
  EXPECT_GT(stats.max_group_concurrency, 1.5);
}

TEST(DistributedDht, BalanceMatchesCentralizedPlateau) {
  // The distributed execution must land in the same quality band as the
  // centralized balancer for the same parameters (randomness differs -
  // message timing reorders victim draws - so compare the plateau, not
  // the exact value).
  constexpr std::size_t kVnodes = 300;
  DistributedDht dht(cfg(16, 16, 21), 8);
  for (std::size_t v = 0; v < kVnodes; ++v) {
    dht.submit_create(static_cast<dht::SNodeId>(v % 8));
  }
  dht.run();
  dht.audit();

  const auto reference = sim::average_runs(
      10, 21, 99,
      [&](std::uint64_t seed) {
        return sim::run_local_growth(cfg(16, 16, seed), kVnodes,
                                     sim::Metric::kSigmaQv);
      });
  const double centralized = reference.back();
  EXPECT_GT(dht.sigma_qv(), centralized * 0.3);
  EXPECT_LT(dht.sigma_qv(), centralized * 3.0);
}

TEST(DistributedDht, DeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    DistributedDht dht(cfg(8, 4, seed), 4);
    for (int v = 0; v < 60; ++v) {
      dht.submit_create(static_cast<dht::SNodeId>(v % 4));
    }
    const RunStats stats = dht.run();
    return std::tuple{stats.messages, stats.rounds, stats.group_splits,
                      dht.sigma_qv(), dht.group_count()};
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(DistributedDht, MessageCountScalesWithGroupSizeNotCluster) {
  // The local approach's headline: per-creation message cost tracks
  // Vmax, not the cluster size.
  const auto messages_per_creation = [](std::size_t snodes) {
    DistributedDht dht(cfg(8, 4, 3), snodes);
    for (std::size_t v = 0; v < 150; ++v) {
      dht.submit_create(static_cast<dht::SNodeId>(v % snodes));
    }
    const RunStats stats = dht.run();
    dht.audit();
    return static_cast<double>(stats.messages) / 150.0;
  };
  const double small_cluster = messages_per_creation(4);
  const double large_cluster = messages_per_creation(32);
  // A global-approach protocol would scale ~8x here; group-sized
  // rounds should stay within ~2x.
  EXPECT_LT(large_cluster, small_cluster * 2.0);
}

TEST(DistributedDht, TransfersMatchDonationAccounting) {
  DistributedDht dht(cfg(8, 8, 13), 4);
  for (int v = 0; v < 80; ++v) {
    dht.submit_create(static_cast<dht::SNodeId>(v % 4));
  }
  const RunStats stats = dht.run();
  dht.audit();
  // Every creation after the bootstrap receives at least Pmin
  // partitions through donations.
  EXPECT_GE(stats.partition_transfers, 79u * 8u / 2u);
  EXPECT_GT(stats.makespan_us, 0.0);
}

TEST(DistributedDht, SingleSnodeClusterStillRunsTheProtocol) {
  DistributedDht dht(cfg(8, 4, 17), 1);
  for (int v = 0; v < 40; ++v) dht.submit_create(0);
  const RunStats stats = dht.run();
  EXPECT_EQ(dht.vnode_count(), 40u);
  dht.audit();
  EXPECT_EQ(stats.rounds, 39u);
}

TEST(DistributedDht, ValidatesArguments) {
  EXPECT_THROW(DistributedDht(cfg(8, 4, 1), 0), InvalidArgument);
  DistributedDht dht(cfg(8, 4, 1), 2);
  EXPECT_THROW(dht.submit_create(5), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::cluster
