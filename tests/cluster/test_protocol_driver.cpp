// Tests for the event-driven protocol DES (cluster::ProtocolDriver):
// the one-accounting-source invariant (DES-derived handover and repair
// totals bit-identical to the store's relocation/replication channels
// over random churn, on all seven backends), the serialization-domain
// structure per scheme, and the scheduling surfaces.

#include "cluster/protocol_driver.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/store.hpp"
#include "sim/protocol_cost.hpp"

namespace cobalt::cluster {
namespace {

std::vector<std::string> make_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  return keys;
}

dht::Config dht_cfg(std::uint64_t pmin, std::uint64_t vmin,
                    std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// The lockstep invariant: run random store-level churn with the
/// driver attached and require the DES batch totals to equal the
/// store's two stats channels bit for bit - same event log, three
/// views. Exercised per scheme at k = 1..3.
template <typename StoreT, typename MakeStore>
void expect_lockstep(MakeStore make) {
  for (std::size_t k = 1; k <= 3; ++k) {
    StoreT store = make(k);
    const auto keys = make_keys(800);
    const auto outcome =
        sim::run_protocol_churn(store, 8, 20, keys, /*seed=*/1234 + k);

    // Read the channels first (the read flushes any pending batches
    // into both the stats and the already-detached totals snapshot
    // below would miss them otherwise - after a completed scenario
    // nothing is pending, but the order keeps the test honest).
    const placement::MigrationStats reloc = store.relocation_stats();
    const kv::ReplicationStats repl = store.replication_stats();

    EXPECT_EQ(outcome.totals.handover_keys_total, reloc.keys_moved_total);
    EXPECT_EQ(outcome.totals.handover_keys_cross,
              reloc.keys_moved_across_nodes);
    EXPECT_EQ(outcome.totals.rebucket_keys, reloc.keys_rebucketed);
    EXPECT_EQ(outcome.totals.repair_copies, repl.keys_rereplicated);
    EXPECT_EQ(outcome.totals.keys_lost, repl.keys_lost);

    // The scenario moved real data, so the log cannot be empty and
    // scheduling it must take time and messages.
    EXPECT_GT(outcome.totals.handover_keys_cross, 0u);
    EXPECT_GT(outcome.schedule.rounds, 0u);
    EXPECT_GT(outcome.schedule.messages, 0u);
    EXPECT_GT(outcome.schedule.makespan_us, 0.0);
    // Serializing the events can never be faster than overlapping
    // them, and scheduling does not change message counts.
    EXPECT_GE(outcome.serialized.makespan_us,
              outcome.schedule.makespan_us - 1e-9);
    EXPECT_EQ(outcome.serialized.messages, outcome.schedule.messages);
  }
}

TEST(ProtocolDriverLockstep, LocalDht) {
  expect_lockstep<kv::KvStore>([](std::size_t k) {
    return kv::KvStore({dht_cfg(32, 8, 11), 1}, k);
  });
}

TEST(ProtocolDriverLockstep, GlobalDht) {
  expect_lockstep<kv::GlobalKvStore>([](std::size_t k) {
    return kv::GlobalKvStore({dht_cfg(32, 1, 12), 1}, k);
  });
}

TEST(ProtocolDriverLockstep, ConsistentHashing) {
  expect_lockstep<kv::ChKvStore>(
      [](std::size_t k) { return kv::ChKvStore({13, 16}, k); });
}

TEST(ProtocolDriverLockstep, Rendezvous) {
  expect_lockstep<kv::HrwKvStore>(
      [](std::size_t k) { return kv::HrwKvStore({14, 10}, k); });
}

TEST(ProtocolDriverLockstep, Jump) {
  expect_lockstep<kv::JumpKvStore>(
      [](std::size_t k) { return kv::JumpKvStore({15, 10}, k); });
}

TEST(ProtocolDriverLockstep, Maglev) {
  expect_lockstep<kv::MaglevKvStore>(
      [](std::size_t k) { return kv::MaglevKvStore({16, 10}, k); });
}

TEST(ProtocolDriverLockstep, BoundedCh) {
  expect_lockstep<kv::BoundedChKvStore>([](std::size_t k) {
    return kv::BoundedChKvStore({17, 16, 0.1, 10}, k);
  });
}

TEST(SerializationDomains, GlobalIsOneDomain) {
  // One replicated GPDR: every round of every event serializes through
  // domain 0, so the longest chain is the whole log.
  kv::GlobalKvStore store({dht_cfg(32, 1, 21), 1}, 2);
  ProtocolDriver<placement::GlobalDhtBackend> driver(store);
  for (int n = 0; n < 6; ++n) store.add_node();
  const auto keys = make_keys(400);
  for (const auto& key : keys) store.put(key, "v");
  store.add_node();
  store.remove_node(0);

  const ScheduleOutcome outcome = driver.run();
  EXPECT_EQ(outcome.domains_used, 1u);
  EXPECT_EQ(outcome.serialized_round_depth, outcome.rounds);
  EXPECT_NEAR(outcome.concurrency, 1.0, 1e-9);
}

TEST(SerializationDomains, LocalUsesPerGroupDomains) {
  // Small Vmin so the growth splits groups: events land in different
  // LPDR domains and the chain is shorter than the log.
  kv::KvStore store({dht_cfg(32, 2, 22), 1}, 2);
  ProtocolDriver<placement::LocalDhtBackend> driver(store);
  const auto keys = make_keys(400);
  for (int n = 0; n < 16; ++n) store.add_node();
  for (const auto& key : keys) store.put(key, "v");
  for (int n = 0; n < 8; ++n) store.add_node();

  EXPECT_GT(store.backend().dht().group_count(), 1u);
  const ScheduleOutcome outcome = driver.run();
  EXPECT_GT(outcome.domains_used, 1u);
  EXPECT_LT(outcome.serialized_round_depth, outcome.rounds);
}

TEST(SerializationDomains, GridSchemesFallBackToTheArcLattice) {
  // HRW defines no native serialization domain; ranges map onto the
  // top-bits arc lattice (many domains, concurrent rounds).
  kv::HrwKvStore store({23, 10}, 1);
  ProtocolDriver<placement::HrwBackend> driver(store);
  const auto keys = make_keys(600);
  store.add_node();
  for (const auto& key : keys) store.put(key, "v");
  for (int n = 0; n < 8; ++n) store.add_node();

  const ScheduleOutcome outcome = driver.run();
  EXPECT_GT(outcome.domains_used, 1u);
  EXPECT_GT(outcome.concurrency, 1.0);
}

TEST(SerializationDomains, ArcLatticeIsTheTopBits) {
  EXPECT_EQ(placement::arc_serialization_domain(0, 8), 0u);
  EXPECT_EQ(placement::arc_serialization_domain(HashSpace::kMaxIndex, 8),
            255u);
  EXPECT_EQ(placement::arc_serialization_domain(HashIndex{1} << 56, 8), 1u);
  EXPECT_THROW((void)placement::arc_serialization_domain(0, 0),
               InvalidArgument);
  EXPECT_THROW((void)placement::arc_serialization_domain(0, 32),
               InvalidArgument);
}

TEST(ProtocolDriver, CapturesStrayFlushesAsImplicitEvents) {
  // Membership mutated through backend() directly produces no
  // begin/end bracket; the batches surface at the next flush and must
  // still be captured, keeping the totals aligned with the channel.
  kv::ChKvStore store({24, 16}, 1);
  ProtocolDriver<placement::ChBackend> driver(store);
  store.add_node();
  const auto keys = make_keys(500);
  for (const auto& key : keys) store.put(key, "v");

  store.backend().add_node();  // bypasses the store's bookkeeping
  const placement::MigrationStats reloc = store.relocation_stats();
  EXPECT_GT(reloc.keys_moved_total, 0u);
  EXPECT_EQ(driver.totals().handover_keys_total, reloc.keys_moved_total);
  EXPECT_GT(driver.recorded().size(), 0u);
}

TEST(ProtocolDriver, StrayBatchesAreNotAttributedToTheNextBracket) {
  // A direct backend() mutation leaves pending batches behind; a
  // following store membership call must flush them as their own
  // implicit event *before* opening its bracket, or the previous
  // event's movement would be priced into the wrong rounds.
  kv::ChKvStore store({27, 16}, 1);
  ProtocolDriver<placement::ChBackend> driver(store);
  store.add_node();
  const auto keys = make_keys(500);
  for (const auto& key : keys) store.put(key, "v");
  driver.clear();

  store.backend().add_node();  // stray: bypasses the store's bookkeeping
  store.add_node();            // bracketed join
  EXPECT_EQ(driver.totals().events, 2u);  // implicit event + the join
  const auto& log = driver.recorded();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front().event, 0u);  // the stray movement came first
  bool join_recorded = false;
  for (const auto& round : log) join_recorded |= round.event == 1u;
  EXPECT_TRUE(join_recorded);
}

TEST(ProtocolDriver, ClearRestrictsTheLogToLaterEvents) {
  kv::HrwKvStore store({25, 10}, 2);
  ProtocolDriver<placement::HrwBackend> driver(store);
  const auto keys = make_keys(300);
  for (int n = 0; n < 6; ++n) store.add_node();
  for (const auto& key : keys) store.put(key, "v");

  driver.clear();
  EXPECT_EQ(driver.totals().events, 0u);
  EXPECT_TRUE(driver.recorded().empty());

  store.add_node();
  EXPECT_EQ(driver.totals().events, 1u);
  EXPECT_FALSE(driver.recorded().empty());
}

TEST(ProtocolDriver, ArrivalGapsDelayButNeverReorderDomains) {
  // The same log scheduled with spaced arrivals can only finish later;
  // messages are a property of the log, not the schedule.
  kv::JumpKvStore store({26, 10}, 2);
  ProtocolDriver<placement::JumpBackend> driver(store);
  const auto keys = make_keys(400);
  for (int n = 0; n < 6; ++n) store.add_node();
  for (const auto& key : keys) store.put(key, "v");
  for (int n = 0; n < 4; ++n) store.add_node();

  const ScheduleOutcome at_once = driver.run(0.0);
  const ScheduleOutcome spaced = driver.run(500.0);
  EXPECT_GE(spaced.makespan_us, at_once.makespan_us - 1e-9);
  EXPECT_EQ(spaced.messages, at_once.messages);
  EXPECT_EQ(spaced.rounds, at_once.rounds);
}

}  // namespace
}  // namespace cobalt::cluster
