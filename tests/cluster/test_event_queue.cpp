// Tests for the discrete-event simulation core.

#include "cluster/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace cobalt::cluster {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  const SimTime end = q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 30.0);
  EXPECT_EQ(q.fired(), 3u);
}

TEST(EventQueue, TiesFireInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(7.0, [&, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  q.schedule_at(1.0, [&] {
    fire_times.push_back(q.now());
    q.schedule_after(2.0, [&] {
      fire_times.push_back(q.now());
      q.schedule_after(3.0, [&] { fire_times.push_back(q.now()); });
    });
  });
  const SimTime end = q.run();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{1.0, 3.0, 6.0}));
  EXPECT_DOUBLE_EQ(end, 6.0);
}

TEST(EventQueue, NowAdvancesOnlyWithEvents) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  q.schedule_at(5.0, [] {});
  EXPECT_DOUBLE_EQ(q.now(), 0.0);  // scheduling does not advance time
  q.run();
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RejectsPastAndEmptyActions) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5.0, [] {}), InvalidArgument);
  EXPECT_THROW(q.schedule_after(-1.0, [] {}), InvalidArgument);
  EXPECT_THROW(q.schedule_after(1.0, nullptr), InvalidArgument);
}

TEST(EventQueue, RunOnEmptyQueueReturnsCurrentTime) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.run(), 0.0);
}

TEST(EventQueue, PendingCountsUnfiredEvents) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.schedule_at(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.run();
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace cobalt::cluster
