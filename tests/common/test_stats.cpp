// Tests for descriptive statistics (the paper's quality metrics).

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace cobalt {
namespace {

TEST(RunningStats, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // the classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAccumulatorThrows) {
  const RunningStats s;
  EXPECT_THROW((void)s.mean(), InvalidArgument);
  EXPECT_THROW((void)s.variance(), InvalidArgument);
  EXPECT_THROW((void)s.min(), InvalidArgument);
  EXPECT_THROW((void)s.max(), InvalidArgument);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Xoshiro256 rng(5);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.next_double() * 10.0);

  RunningStats whole;
  for (const double v : values) whole.add(v);

  RunningStats left;
  RunningStats right;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i < 300 ? left : right).add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  a.merge(b);  // empty.merge(nonempty)
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats c;
  a.merge(c);  // nonempty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(Stats, MeanOfSpan) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.0);
  EXPECT_THROW((void)mean(std::vector<double>{}), InvalidArgument);
}

TEST(Stats, PopulationStddevDividesByN) {
  // {1, 3}: mean 2, population sigma 1 (sample sigma would be sqrt(2)).
  const std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(population_stddev(v), 1.0);
}

TEST(Stats, RelativeStddevIsScaleInvariant) {
  // Section 2.4: Y = c*X implies equal *relative* deviations.
  const std::vector<double> x{2.0, 4.0, 6.0, 8.0};
  std::vector<double> y;
  for (const double v : x) y.push_back(v * 37.5);
  EXPECT_NEAR(relative_stddev(x), relative_stddev(y), 1e-12);
}

TEST(Stats, RelativeStddevUniformIsZero) {
  const std::vector<double> v{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(relative_stddev(v), 0.0);
}

TEST(Stats, RelativeStddevZeroMeanThrows) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_THROW((void)relative_stddev(v), InvalidArgument);
}

TEST(Stats, RelativeStddevNegativeMeanThrows) {
  // Regression: a merely-nonzero mean check let a negative mean flip
  // the sign of sigma ({-2, -4} used to report -sqrt(1)/3).
  const std::vector<double> v{-2.0, -4.0};
  EXPECT_THROW((void)relative_stddev(v), InvalidArgument);
}

TEST(Stats, RelativeStddevAroundIdealMean) {
  // sigma-bar(Qg, 1/G) of section 4.2.1: quotas {0.3, 0.7} against the
  // ideal mean 0.5: sqrt(((0.2)^2 + (0.2)^2)/2)/0.5 = 0.4.
  const std::vector<double> quotas{0.3, 0.7};
  EXPECT_NEAR(relative_stddev_around(quotas, 0.5), 0.4, 1e-12);
  // Around the true mean it coincides with relative_stddev.
  EXPECT_NEAR(relative_stddev_around(quotas, mean(quotas)),
              relative_stddev(quotas), 1e-12);
}

TEST(Stats, RelativeStddevAroundValidation) {
  const std::vector<double> v{1.0};
  EXPECT_THROW((void)relative_stddev_around(v, 0.0), InvalidArgument);
  EXPECT_THROW((void)relative_stddev_around(std::vector<double>{}, 1.0),
               InvalidArgument);
}

// Property: Welford accumulation matches the two-pass formula on random
// data, across magnitudes.
TEST(Stats, WelfordMatchesTwoPass) {
  Xoshiro256 rng(77);
  for (const double scale : {1.0, 1e6, 1e-6}) {
    std::vector<double> values;
    RunningStats s;
    for (int i = 0; i < 500; ++i) {
      const double v = (rng.next_double() + 0.5) * scale;
      values.push_back(v);
      s.add(v);
    }
    EXPECT_NEAR(s.mean(), mean(values), std::abs(scale) * 1e-12);
    EXPECT_NEAR(s.stddev(), population_stddev(values),
                std::abs(scale) * 1e-9);
  }
}

}  // namespace
}  // namespace cobalt
