// Runtime behaviour of the annotated lock wrappers
// (common/thread_annotations.hpp) and the ShardIndex scoped capability
// types: engaged wrappers must actually exclude a second thread, and
// disengaged wrappers (serial mode) must be runtime no-ops. The
// compile-time side of the same contract is covered by the
// negative-compile fixtures in tests/static/.
//
// All probes run on a second thread: try_lock succeeding on the
// owning thread says nothing for std::mutex (undefined) and is
// guaranteed-false for std::shared_mutex writers, so cross-thread
// observation is the only portable way to see the exclusion.

#include <cstddef>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_annotations.hpp"
#include "kv/shard_index.hpp"

namespace {

using cobalt::kv::ShardIndex;

// Each probe joins before returning, so a `true` means the second
// thread both acquired and released - no lock leaks across asserts.

bool other_thread_can_lock(cobalt::Mutex& mutex) {
  bool acquired = false;
  std::thread probe([&] {
    acquired = mutex.try_lock();
    if (acquired) mutex.unlock();
  });
  probe.join();
  return acquired;
}

bool other_thread_can_lock(cobalt::SharedMutex& mutex) {
  bool acquired = false;
  std::thread probe([&] {
    acquired = mutex.try_lock();
    if (acquired) mutex.unlock();
  });
  probe.join();
  return acquired;
}

bool other_thread_can_lock_shared(cobalt::SharedMutex& mutex) {
  bool acquired = false;
  std::thread probe([&] {
    acquired = mutex.try_lock_shared();
    if (acquired) mutex.unlock_shared();
  });
  probe.join();
  return acquired;
}

TEST(ThreadAnnotations, MaybeLockGuardEngagedExcludes) {
  cobalt::Mutex mutex;
  {
    const cobalt::MaybeLockGuard guard(mutex, /*engage=*/true);
    EXPECT_FALSE(other_thread_can_lock(mutex));
  }
  EXPECT_TRUE(other_thread_can_lock(mutex));  // released on scope exit
}

TEST(ThreadAnnotations, MaybeLockGuardDisengagedIsNoOp) {
  cobalt::Mutex mutex;
  const cobalt::MaybeLockGuard guard(mutex, /*engage=*/false);
  EXPECT_TRUE(other_thread_can_lock(mutex));
}

TEST(ThreadAnnotations, MaybeUniqueLockEngagedExcludesReadersAndWriters) {
  cobalt::SharedMutex mutex;
  {
    const cobalt::MaybeUniqueLock lock(mutex, /*engage=*/true);
    EXPECT_FALSE(other_thread_can_lock(mutex));
    EXPECT_FALSE(other_thread_can_lock_shared(mutex));
  }
  EXPECT_TRUE(other_thread_can_lock(mutex));
}

TEST(ThreadAnnotations, MaybeUniqueLockDisengagedIsNoOp) {
  cobalt::SharedMutex mutex;
  const cobalt::MaybeUniqueLock lock(mutex, /*engage=*/false);
  EXPECT_TRUE(other_thread_can_lock(mutex));
}

TEST(ThreadAnnotations, MaybeSharedLockEngagedAdmitsReadersExcludesWriters) {
  cobalt::SharedMutex mutex;
  {
    const cobalt::MaybeSharedLock lock(mutex, /*engage=*/true);
    EXPECT_TRUE(other_thread_can_lock_shared(mutex));
    EXPECT_FALSE(other_thread_can_lock(mutex));
  }
  EXPECT_TRUE(other_thread_can_lock(mutex));
}

TEST(ThreadAnnotations, MaybeSharedLockDisengagedIsNoOp) {
  cobalt::SharedMutex mutex;
  const cobalt::MaybeSharedLock lock(mutex, /*engage=*/false);
  EXPECT_TRUE(other_thread_can_lock(mutex));
}

TEST(ThreadAnnotations, StructureLocksEngageGated) {
  ShardIndex index;
  {
    const ShardIndex::StructureExclusiveLock structure(index,
                                                       /*engage=*/true);
    EXPECT_FALSE(other_thread_can_lock_shared(index.structure_mutex_));
  }
  {
    const ShardIndex::StructureExclusiveLock structure(index,
                                                       /*engage=*/false);
    EXPECT_TRUE(other_thread_can_lock(index.structure_mutex_));
  }
  {
    const ShardIndex::StructureSharedLock structure(index, /*engage=*/true);
    EXPECT_TRUE(other_thread_can_lock_shared(index.structure_mutex_));
    EXPECT_FALSE(other_thread_can_lock(index.structure_mutex_));
  }
  EXPECT_TRUE(other_thread_can_lock(index.structure_mutex_));
}

TEST(ThreadAnnotations, StripeSharedLockHoldsExactlyItsStripe) {
  ShardIndex index;
  // Hash 0 lives in stripe 0; stripe 1 must remain untouched.
  {
    const ShardIndex::StripeSharedLock stripe(index, /*hash=*/0,
                                              /*engage=*/true);
    EXPECT_FALSE(other_thread_can_lock(index.stripe_mutex(0)));
    EXPECT_TRUE(other_thread_can_lock(index.stripe_mutex(1)));
  }
  {
    const ShardIndex::StripeSharedLock stripe(index, /*hash=*/0,
                                              /*engage=*/false);
    EXPECT_TRUE(other_thread_can_lock(index.stripe_mutex(0)));
  }
  EXPECT_TRUE(other_thread_can_lock(index.stripe_mutex(0)));
}

TEST(ThreadAnnotations, ShardSpanLockCoversWholeSpanExclusively) {
  ShardIndex index;  // one shard covering all of R_h -> all stripes
  const ShardIndex::StructureSharedLock structure(index);
  {
    const ShardIndex::ShardSpanLock span(index, /*shard=*/0,
                                         /*engage=*/true);
    EXPECT_FALSE(other_thread_can_lock_shared(index.stripe_mutex(0)));
    EXPECT_FALSE(other_thread_can_lock_shared(
        index.stripe_mutex(ShardIndex::kLockStripes - 1)));
  }
  {
    const ShardIndex::ShardSpanLock span(index, /*shard=*/0,
                                         /*engage=*/false);
    EXPECT_TRUE(other_thread_can_lock(index.stripe_mutex(0)));
  }
  EXPECT_TRUE(other_thread_can_lock(index.stripe_mutex(0)));
}

TEST(ThreadAnnotations, AllStripesSharedLockAdmitsReadersExcludesWriters) {
  ShardIndex index;
  const ShardIndex::StructureSharedLock structure(index);
  {
    const ShardIndex::AllStripesSharedLock stripes(index, /*engage=*/true);
    for (std::size_t s = 0; s < ShardIndex::kLockStripes; ++s) {
      EXPECT_TRUE(other_thread_can_lock_shared(index.stripe_mutex(s)));
      EXPECT_FALSE(other_thread_can_lock(index.stripe_mutex(s)));
    }
  }
  EXPECT_TRUE(other_thread_can_lock(index.stripe_mutex(0)));
}

}  // namespace
