// Tests for the worker pool and parallel_for.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace cobalt {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // join
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(pool, kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
  SUCCEED();
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 13) throw InvalidArgument("unlucky");
                   }),
      InvalidArgument);
  // The pool is still usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, ResultsMatchSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 500;
  std::vector<double> parallel_out(kCount);
  parallel_for(pool, kCount, [&](std::size_t i) {
    parallel_out[i] = static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(parallel_out[i], static_cast<double>(i) * 1.5);
  }
}

TEST(ParallelFor, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2ull);
}

TEST(ParallelFor, ExceptionAfterBarrierLeavesOtherIterationsComplete) {
  // The rethrow happens only after every iteration has finished: the
  // non-throwing iterations must all have run (the barrier is not cut
  // short by the failure).
  ThreadPool pool(3);
  constexpr std::size_t kCount = 300;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(parallel_for(pool, kCount,
                            [&](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i % 97 == 0) throw InvalidArgument("boom");
                            }),
               InvalidArgument);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, NestedCallFromAWorkerDoesNotDeadlock) {
  // A pool task that itself calls parallel_for on the same pool: with
  // every worker occupied by outer iterations, the inner calls can
  // only progress because the calling thread participates in its own
  // iteration loop. The seed implementation waited for its submitted
  // helpers and deadlocked here.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  parallel_for(pool, 4, [&](std::size_t) {
    parallel_for(pool, 50,
                 [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 50);
}

TEST(ParallelFor, NestedCallPropagatesInnerExceptions) {
  ThreadPool pool(2);
  std::atomic<int> outer_failures{0};
  parallel_for(pool, 3, [&](std::size_t) {
    try {
      parallel_for(pool, 20, [&](std::size_t i) {
        if (i == 7) throw InvalidArgument("inner");
      });
    } catch (const InvalidArgument&) {
      outer_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(outer_failures.load(), 3);
}

TEST(ThreadPool, WaitIdleRacingSubmitSeesAConsistentQueue) {
  // wait_idle must never hang or miss a wakeup while another thread is
  // still submitting: after the submitter joins, one final wait_idle
  // observes a fully drained pool and every task has run exactly once.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  constexpr int kTasks = 400;
  std::thread submitter([&] {
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] { executed.fetch_add(1); });
      if (i % 16 == 0) std::this_thread::yield();
    }
  });
  // Racing waits: each returns whenever the queue happens to be empty;
  // none may deadlock against the concurrent submits.
  for (int round = 0; round < 50; ++round) pool.wait_idle();
  submitter.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kTasks);
}

}  // namespace
}  // namespace cobalt
