// Tests for the worker pool and parallel_for.

#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace cobalt {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // join
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(pool, kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
  SUCCEED();
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 100,
                   [](std::size_t i) {
                     if (i == 13) throw InvalidArgument("unlucky");
                   }),
      InvalidArgument);
  // The pool is still usable afterwards.
  std::atomic<int> counter{0};
  parallel_for(pool, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, ResultsMatchSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 500;
  std::vector<double> parallel_out(kCount);
  parallel_for(pool, kCount, [&](std::size_t i) {
    parallel_out[i] = static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_DOUBLE_EQ(parallel_out[i], static_cast<double>(i) * 1.5);
  }
}

TEST(ParallelFor, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  parallel_for(pool, 10000, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10000ull * 9999ull / 2ull);
}

}  // namespace
}  // namespace cobalt
