// Tests for the deterministic PRNG stack.

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cobalt {
namespace {

TEST(SplitMix64, KnownReferenceSequence) {
  // Reference values for seed 0 from the public-domain algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(sm.next(), 0x06c45d188009454full);
}

TEST(SplitMix64, SeedsProduceDistinctStreams) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsAPermutationFragment) {
  // Distinct inputs map to distinct outputs (sampled).
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c(43);
  bool differs = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Xoshiro256, NextBelowIsInRange) {
  Xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
  EXPECT_THROW((void)rng.next_below(0), InvalidArgument);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets / 5.0);
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BooleanIsBalanced) {
  Xoshiro256 rng(17);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool() ? 1 : 0;
  EXPECT_NEAR(trues, 5000, 300);
}

TEST(DeriveSeed, DistinctTriplesDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {1ull, 2ull}) {
    for (std::uint64_t tag : {0ull, 1ull, 7ull}) {
      for (std::uint64_t run = 0; run < 50; ++run) {
        seeds.insert(derive_seed(root, tag, run));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 2u * 3u * 50u);
}

TEST(Shuffle, IsAPermutation) {
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  Xoshiro256 rng(23);
  shuffle(shuffled, rng);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(Shuffle, AllPermutationsReachable) {
  // Over many shuffles of {0,1,2}, all 6 orders appear.
  std::set<std::vector<int>> seen;
  Xoshiro256 rng(29);
  for (int i = 0; i < 300; ++i) {
    std::vector<int> v{0, 1, 2};
    shuffle(v, rng);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Xoshiro256 rng(31);
  const auto sample = sample_without_replacement(100, 20, rng);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(SampleWithoutReplacement, FullPopulationIsPermutation) {
  Xoshiro256 rng(37);
  const auto sample = sample_without_replacement(10, 10, rng);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacement, OversampleThrows) {
  Xoshiro256 rng(41);
  EXPECT_THROW((void)sample_without_replacement(5, 6, rng), InvalidArgument);
}

}  // namespace
}  // namespace cobalt
