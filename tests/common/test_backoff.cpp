// Tests for the capped-exponential-backoff helper (common/backoff.hpp):
// raw-delay growth and capping, jitter bounds and zero-jitter
// exactness, bit-identical determinism per (policy, retry, token), and
// the attempt-budget semantics.

#include "common/backoff.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cobalt {
namespace {

BackoffPolicy plain() {
  BackoffPolicy policy;
  policy.base_us = 100.0;
  policy.multiplier = 2.0;
  policy.cap_us = 1000.0;
  policy.jitter = 0.0;
  policy.max_attempts = 4;
  return policy;
}

TEST(Backoff, RawDelayGrowsExponentiallyUntilTheCap) {
  const BackoffPolicy policy = plain();
  EXPECT_DOUBLE_EQ(backoff_raw_delay_us(policy, 0), 100.0);
  EXPECT_DOUBLE_EQ(backoff_raw_delay_us(policy, 1), 200.0);
  EXPECT_DOUBLE_EQ(backoff_raw_delay_us(policy, 2), 400.0);
  EXPECT_DOUBLE_EQ(backoff_raw_delay_us(policy, 3), 800.0);
  // 1600 clamps to the cap, and stays there for every later retry.
  EXPECT_DOUBLE_EQ(backoff_raw_delay_us(policy, 4), 1000.0);
  EXPECT_DOUBLE_EQ(backoff_raw_delay_us(policy, 50), 1000.0);
}

TEST(Backoff, RawDelayIsMonotoneNonDecreasing) {
  BackoffPolicy policy = plain();
  policy.multiplier = 1.7;
  double previous = 0.0;
  for (std::size_t retry = 0; retry < 40; ++retry) {
    const double delay = backoff_raw_delay_us(policy, retry);
    EXPECT_GE(delay, previous);
    EXPECT_LE(delay, policy.cap_us);
    previous = delay;
  }
}

TEST(Backoff, ZeroJitterReturnsTheRawDelayExactly) {
  const BackoffPolicy policy = plain();
  for (std::size_t retry = 0; retry < 8; ++retry) {
    for (std::uint64_t token = 0; token < 16; ++token) {
      EXPECT_EQ(backoff_delay_us(policy, retry, token),
                backoff_raw_delay_us(policy, retry));
    }
  }
}

TEST(Backoff, JitterStaysInsideTheSymmetricBand) {
  BackoffPolicy policy = plain();
  policy.jitter = 0.25;
  for (std::uint64_t token = 0; token < 2000; ++token) {
    const double raw = backoff_raw_delay_us(policy, 2);
    const double delay = backoff_delay_us(policy, 2, token);
    EXPECT_GE(delay, raw * (1.0 - policy.jitter));
    EXPECT_LT(delay, raw * (1.0 + policy.jitter));
  }
}

TEST(Backoff, JitterActuallyVariesAcrossTokens) {
  BackoffPolicy policy = plain();
  policy.jitter = 0.25;
  const double first = backoff_delay_us(policy, 1, 1);
  bool varied = false;
  for (std::uint64_t token = 2; token < 50 && !varied; ++token) {
    varied = backoff_delay_us(policy, 1, token) != first;
  }
  EXPECT_TRUE(varied);
}

TEST(Backoff, SameInputsSameDelayBitForBit) {
  BackoffPolicy policy = plain();
  policy.jitter = 0.4;
  for (std::size_t retry = 0; retry < 10; ++retry) {
    for (std::uint64_t token = 7; token < 7000; token *= 3) {
      EXPECT_EQ(backoff_delay_us(policy, retry, token),
                backoff_delay_us(policy, retry, token));
    }
  }
}

TEST(Backoff, ExhaustedCountsTotalAttempts) {
  const BackoffPolicy policy = plain();  // max_attempts = 4
  EXPECT_FALSE(backoff_exhausted(policy, 0));
  EXPECT_FALSE(backoff_exhausted(policy, 3));
  EXPECT_TRUE(backoff_exhausted(policy, 4));
  EXPECT_TRUE(backoff_exhausted(policy, 5));
}

TEST(Backoff, ValidateRejectsInconsistentPolicies) {
  EXPECT_NO_THROW(validate(plain()));

  BackoffPolicy bad = plain();
  bad.base_us = 0.0;
  EXPECT_THROW(validate(bad), InvalidArgument);

  bad = plain();
  bad.cap_us = bad.base_us / 2.0;
  EXPECT_THROW(validate(bad), InvalidArgument);

  bad = plain();
  bad.multiplier = 0.5;
  EXPECT_THROW(validate(bad), InvalidArgument);

  bad = plain();
  bad.jitter = 1.0;
  EXPECT_THROW(validate(bad), InvalidArgument);

  bad = plain();
  bad.max_attempts = 0;
  EXPECT_THROW(validate(bad), InvalidArgument);
}

}  // namespace
}  // namespace cobalt
