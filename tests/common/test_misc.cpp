// Tests for CSV emission, text tables, ASCII charts, CLI parsing and
// the error primitives.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/ascii_chart.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace cobalt {
namespace {

// ---------------------------------------------------------------- CSV

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "cobalt_csv_test.csv";

  std::string slurp() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.write_header({"x", "y"});
    csv.write_numeric_row({1.0, 2.5});
    csv.write_numeric_row({2.0, 0.125});
  }
  EXPECT_EQ(slurp(), "x,y\n1,2.5\n2,0.125\n");
}

TEST_F(CsvTest, QuotesSpecialFields) {
  {
    CsvWriter csv(path_);
    csv.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  EXPECT_EQ(slurp(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST_F(CsvTest, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), Error);
}

// -------------------------------------------------------------- Table

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name    v \n"), std::string::npos);
  EXPECT_NE(out.find("longer  22\n"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, NumericRowsRespectPrecision) {
  TextTable t({"v"});
  t.add_numeric_row({3.14159}, 2);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable t({"a", "b"});
  t.add_row({"only"});
  EXPECT_NO_THROW((void)t.render());
}

TEST(FormatFixed, FormatsPlainDecimal) {
  EXPECT_EQ(format_fixed(1.5, 3), "1.500");
  EXPECT_EQ(format_fixed(-0.25, 2), "-0.25");
  EXPECT_EQ(format_fixed(10.0, 0), "10");
}

// -------------------------------------------------------------- Chart

TEST(AsciiChart, RendersSeriesAndLegend) {
  ChartOptions options;
  options.width = 32;
  options.height = 8;
  AsciiChart chart(options);
  chart.add_series(ChartSeries{"up", {0, 1, 2, 3}, {0, 1, 2, 3}});
  chart.add_series(ChartSeries{"down", {0, 1, 2, 3}, {3, 2, 1, 0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("[*] up"), std::string::npos);
  EXPECT_NE(out.find("[+] down"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(AsciiChart, RejectsBadInput) {
  AsciiChart chart;
  EXPECT_THROW(chart.add_series(ChartSeries{"bad", {1.0}, {}}),
               InvalidArgument);
  EXPECT_THROW((void)chart.render(), InvalidArgument);  // no series
  EXPECT_THROW(AsciiChart(ChartOptions{4, 1, "", "", 0.0, true}),
               InvalidArgument);
}

TEST(AsciiChart, FlatSeriesDoesNotDivideByZero) {
  AsciiChart chart;
  chart.add_series(ChartSeries{"flat", {1, 2, 3}, {5, 5, 5}});
  EXPECT_NO_THROW((void)chart.render());
}

// ---------------------------------------------------------------- CLI

TEST(CliParser, ParsesAllForms) {
  const char* argv[] = {"prog",   "--alpha=0.5", "--runs=100",
                        "--flag", "positional",  "--list=1,2,3"};
  const CliParser cli(6, argv);
  EXPECT_EQ(cli.program_name(), "prog");
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(cli.get_uint("runs", 0), 100u);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_FALSE(cli.has("absent"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.get_uint_list("list", {}),
            (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(CliParser, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliParser cli(1, argv);
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("n", -3), -3);
  EXPECT_FALSE(cli.get_bool("b", false));
  EXPECT_EQ(cli.get_uint_list("l", {7}), (std::vector<std::uint64_t>{7}));
}

TEST(CliParser, BadValuesThrow) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe", "--d=1.2.3"};
  const CliParser cli(4, argv);
  EXPECT_THROW((void)cli.get_int("n", 0), InvalidArgument);
  EXPECT_THROW((void)cli.get_bool("b", false), InvalidArgument);
  EXPECT_THROW((void)cli.get_double("d", 0.0), InvalidArgument);
}

TEST(CliParser, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  const CliParser cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

// -------------------------------------------------------------- Error

TEST(Error, MacrosCaptureExpressionAndLocation) {
  try {
    COBALT_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("test_misc.cpp"), std::string::npos);
  }
  try {
    COBALT_INVARIANT(false, "broken");
    FAIL() << "should have thrown";
  } catch (const InvariantViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant violation"),
              std::string::npos);
  }
}

TEST(Error, HierarchyCatchesAsBase) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw InvariantViolation("y"), Error);
}

}  // namespace
}  // namespace cobalt
