// Unit and property tests for exact dyadic-rational arithmetic.

#include "common/dyadic.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cobalt {
namespace {

TEST(Dyadic, DefaultIsZero) {
  const Dyadic zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero, Dyadic::from_integer(0));
  EXPECT_DOUBLE_EQ(zero.to_double(), 0.0);
}

TEST(Dyadic, IntegerRoundTrip) {
  EXPECT_DOUBLE_EQ(Dyadic::from_integer(7).to_double(), 7.0);
  EXPECT_EQ(Dyadic::one(), Dyadic::from_integer(1));
}

TEST(Dyadic, HalvesSumToOne) {
  const Dyadic half = Dyadic::one_over_pow2(1);
  EXPECT_EQ(half + half, Dyadic::one());
}

TEST(Dyadic, NormalizationMakesEqualityStructural) {
  // 2/2^1 == 1/2^0 == 1; 4/2^3 == 1/2^1.
  EXPECT_EQ(Dyadic::ratio(2, 1), Dyadic::one());
  EXPECT_EQ(Dyadic::ratio(4, 3), Dyadic::one_over_pow2(1));
  EXPECT_EQ(Dyadic::ratio(4, 3).log2_denominator(), 1u);
  EXPECT_EQ(Dyadic::ratio(4, 3).numerator(), static_cast<uint128>(1));
}

TEST(Dyadic, AdditionWithDifferentDenominators) {
  // 1/4 + 1/8 = 3/8
  const Dyadic sum = Dyadic::one_over_pow2(2) + Dyadic::one_over_pow2(3);
  EXPECT_EQ(sum, Dyadic::ratio(3, 3));
  EXPECT_DOUBLE_EQ(sum.to_double(), 0.375);
}

TEST(Dyadic, SubtractionIsExactInverse) {
  const Dyadic a = Dyadic::ratio(5, 4);   // 5/16
  const Dyadic b = Dyadic::ratio(3, 6);   // 3/64
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a + b) - a, b);
}

TEST(Dyadic, SubtractionUnderflowThrows) {
  EXPECT_THROW((void)(Dyadic::one_over_pow2(3) - Dyadic::one_over_pow2(2)),
               InvalidArgument);
}

TEST(Dyadic, ScalarMultiplication) {
  // 6 * 1/8 = 3/4
  EXPECT_EQ(Dyadic::one_over_pow2(3) * 6, Dyadic::ratio(3, 2));
  EXPECT_TRUE((Dyadic::one() * 0).is_zero());
}

TEST(Dyadic, OrderingIsTotalAndConsistent) {
  const Dyadic quarter = Dyadic::one_over_pow2(2);
  const Dyadic third_of_eight = Dyadic::ratio(3, 3);  // 3/8
  EXPECT_LT(quarter, third_of_eight);
  EXPECT_GT(Dyadic::one(), third_of_eight);
  EXPECT_LE(quarter, quarter);
  // Very different magnitudes (the bit-width fast path).
  EXPECT_LT(Dyadic::one_over_pow2(60), Dyadic::from_integer(1000));
}

TEST(Dyadic, DeepLevelsStayExact) {
  // Sum 2^k cells of level k back to exactly 1, for deep k.
  for (unsigned level : {10u, 20u, 40u, 60u}) {
    Dyadic sum;
    const Dyadic cell = Dyadic::one_over_pow2(level);
    // Sum in two halves to keep the loop short: cell * 2^level == 1.
    EXPECT_EQ(cell * (std::uint64_t{1} << level), Dyadic::one())
        << "level " << level;
    sum += cell;
    sum += cell;
    EXPECT_EQ(sum, Dyadic::one_over_pow2(level - 1));
  }
}

TEST(Dyadic, ToStringReadable) {
  EXPECT_EQ(Dyadic::ratio(3, 3).to_string(), "3/2^3");
  EXPECT_EQ(Dyadic{}.to_string(), "0/2^0");
  EXPECT_EQ(Dyadic::one().to_string(), "1/2^0");
}

TEST(Dyadic, LevelLimitEnforced) {
  EXPECT_THROW((void)Dyadic::one_over_pow2(127), InvalidArgument);
  EXPECT_NO_THROW((void)Dyadic::one_over_pow2(126));
}

// Property: random partitions of unity re-sum to exactly one. This is
// the exact statement the invariant checker relies on.
TEST(Dyadic, RandomBinaryPartitionsOfUnitySumExactly) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    // Repeatedly split a random cell of the current partition of 1.
    std::vector<Dyadic> cells{Dyadic::one()};
    std::vector<unsigned> levels{0};
    for (int step = 0; step < 50; ++step) {
      const std::size_t i =
          static_cast<std::size_t>(rng.next_below(cells.size()));
      if (levels[i] >= 100) continue;
      levels[i] += 1;
      cells[i] = Dyadic::one_over_pow2(levels[i]);
      cells.push_back(Dyadic::one_over_pow2(levels[i]));
      levels.push_back(levels[i]);
    }
    Dyadic sum;
    for (const Dyadic& c : cells) sum += c;
    ASSERT_EQ(sum, Dyadic::one()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cobalt
