// Tests for the fixed-range histogram.

#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cobalt {
namespace {

TEST(Histogram, CountsAndMean) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);
  h.add(2.0);
  h.add(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OutOfRangeClampsAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, PercentilesOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Xoshiro256 rng(1);
  for (int i = 0; i < 100000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.percentile(0.50), 0.5, 0.02);
  EXPECT_NEAR(h.percentile(0.95), 0.95, 0.02);
  EXPECT_NEAR(h.percentile(0.05), 0.05, 0.02);
}

TEST(Histogram, PercentileOfPointMass) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(7.3);
  // All mass in bucket [7, 8): every percentile lands inside it.
  EXPECT_GE(h.percentile(0.01), 7.0);
  EXPECT_LE(h.percentile(0.99), 8.0);
}

TEST(Histogram, BucketFloors) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_floor(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_floor(4), 18.0);
  EXPECT_THROW((void)h.bucket_floor(5), InvalidArgument);
}

TEST(Histogram, SummaryIsCompact) {
  Histogram h(0.0, 4.0, 4);
  EXPECT_EQ(h.summary(), "n=0");
  h.add(1.0);
  h.add(3.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("mean=2.000"), std::string::npos);
}

TEST(Histogram, ValidatesConstructionAndQueries) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.percentile(0.5), InvalidArgument);  // empty
  h.add(0.5);
  EXPECT_THROW((void)h.percentile(1.5), InvalidArgument);
}

}  // namespace
}  // namespace cobalt
