// Unit and property tests for the Consistent Hashing baseline.

#include "ch/ring.hpp"

#include <gtest/gtest.h>

#include "ch/provisioning.hpp"
#include "common/error.hpp"

namespace cobalt::ch {
namespace {

constexpr double kUlp = 1e-12;

TEST(ConsistentHashRing, SingleNodeOwnsTheWholeRing) {
  ConsistentHashRing ring(1);
  const NodeId n = ring.add_node(4);
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_EQ(ring.point_count(), 4u);
  const auto q = ring.quotas();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_NEAR(q[0], 1.0, kUlp);
  EXPECT_NEAR(ring.sigma_qn(), 0.0, kUlp);
  EXPECT_EQ(ring.lookup(0), n);
  EXPECT_EQ(ring.lookup(HashSpace::kMaxIndex), n);
}

TEST(ConsistentHashRing, QuotasAlwaysSumToOne) {
  ConsistentHashRing ring(7);
  for (int i = 0; i < 50; ++i) {
    ring.add_node(8);
    const auto q = ring.quotas();
    double sum = 0.0;
    for (double v : q) sum += v;
    ASSERT_NEAR(sum, 1.0, 1e-9) << "after node " << i + 1;
  }
}

TEST(ConsistentHashRing, ArcUnitsSumExactlyToTheRing) {
  ConsistentHashRing ring(11);
  for (int i = 0; i < 20; ++i) ring.add_node(16);
  uint128 sum = 0;
  for (NodeId n = 0; n < 20; ++n) sum += ring.arc_units(n);
  EXPECT_TRUE(sum == (static_cast<uint128>(1) << 64));
}

TEST(ConsistentHashRing, LookupReturnsLiveNodes) {
  ConsistentHashRing ring(13);
  for (int i = 0; i < 10; ++i) ring.add_node(8);
  Xoshiro256 rng(99);
  for (int probe = 0; probe < 2000; ++probe) {
    const NodeId n = ring.lookup(rng.next());
    EXPECT_TRUE(ring.is_live(n));
  }
}

TEST(ConsistentHashRing, LookupDistributionTracksQuotas) {
  // Monte-Carlo: the fraction of keys routed to a node approaches its
  // quota (this validates that quota bookkeeping matches routing).
  ConsistentHashRing ring(17);
  for (int i = 0; i < 4; ++i) ring.add_node(16);
  std::vector<std::size_t> hits(4, 0);
  Xoshiro256 rng(5);
  constexpr int kProbes = 200000;
  for (int probe = 0; probe < kProbes; ++probe) {
    ++hits[ring.lookup(rng.next())];
  }
  const auto q = ring.quotas();
  for (std::size_t n = 0; n < 4; ++n) {
    const double observed =
        static_cast<double>(hits[n]) / static_cast<double>(kProbes);
    EXPECT_NEAR(observed, q[n], 0.01) << "node " << n;
  }
}

TEST(ConsistentHashRing, RemoveNodeAccretesArcsToSurvivors) {
  ConsistentHashRing ring(19);
  for (int i = 0; i < 6; ++i) ring.add_node(8);
  ring.remove_node(2);
  EXPECT_EQ(ring.node_count(), 5u);
  EXPECT_FALSE(ring.is_live(2));
  EXPECT_TRUE(ring.arc_units(2) == 0);
  const auto q = ring.quotas();
  ASSERT_EQ(q.size(), 5u);
  double sum = 0.0;
  for (double v : q) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Keys previously owned by node 2 now land on live nodes.
  Xoshiro256 rng(3);
  for (int probe = 0; probe < 1000; ++probe) {
    EXPECT_NE(ring.lookup(rng.next()), 2u);
  }
}

TEST(ConsistentHashRing, RemoveLastNodeEmptiesTheRing) {
  ConsistentHashRing ring(23);
  const NodeId n = ring.add_node(4);
  ring.remove_node(n);
  EXPECT_EQ(ring.node_count(), 0u);
  EXPECT_EQ(ring.point_count(), 0u);
  EXPECT_THROW((void)ring.lookup(1), InvalidArgument);
}

TEST(ConsistentHashRing, InvalidOperationsRejected) {
  ConsistentHashRing ring(29);
  EXPECT_THROW((void)ring.add_node(0), InvalidArgument);
  EXPECT_THROW((void)ring.remove_node(0), InvalidArgument);
  ring.add_node(2);
  ring.remove_node(0);
  EXPECT_THROW((void)ring.remove_node(0), InvalidArgument);
}

TEST(ConsistentHashRing, MoreVirtualServersImproveBalance) {
  // The classic CH result: sigma-bar(Qn) shrinks roughly as 1/sqrt(k).
  // Compare averaged deviations at k=4 and k=64 over several seeds.
  double coarse = 0.0;
  double fine = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ConsistentHashRing a(seed);
    ConsistentHashRing b(seed + 1000);
    for (int i = 0; i < 64; ++i) a.add_node(4);
    for (int i = 0; i < 64; ++i) b.add_node(64);
    coarse += a.sigma_qn();
    fine += b.sigma_qn();
  }
  EXPECT_LT(fine, coarse * 0.6);
}

TEST(ConsistentHashRing, DeterministicUnderSeed) {
  ConsistentHashRing a(42);
  ConsistentHashRing b(42);
  for (int i = 0; i < 16; ++i) {
    a.add_node(8);
    b.add_node(8);
  }
  EXPECT_EQ(a.quotas(), b.quotas());
  ConsistentHashRing c(43);
  for (int i = 0; i < 16; ++i) c.add_node(8);
  EXPECT_NE(a.quotas(), c.quotas());
}

TEST(Provisioning, HomogeneousFollowsKLogN) {
  EXPECT_EQ(homogeneous_virtual_servers(1, 8), 8u);
  EXPECT_EQ(homogeneous_virtual_servers(2, 8), 8u);
  EXPECT_EQ(homogeneous_virtual_servers(1024, 8), 80u);
  EXPECT_EQ(homogeneous_virtual_servers(1025, 8), 88u);
  EXPECT_THROW((void)homogeneous_virtual_servers(0, 8), InvalidArgument);
}

TEST(Provisioning, WeightedScalesWithCapacity) {
  EXPECT_EQ(weighted_virtual_servers(32, 1.0), 32u);
  EXPECT_EQ(weighted_virtual_servers(32, 2.0), 64u);
  EXPECT_EQ(weighted_virtual_servers(32, 0.01), 1u);  // floor at 1
  EXPECT_THROW((void)weighted_virtual_servers(32, 0.0), InvalidArgument);
}

// Parameterized: growth from 1 to 128 nodes keeps sigma in a sane band
// for several k (CH exhibits a roughly flat profile - figure 9's
// qualitative shape).
class ChGrowth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChGrowth, SigmaStaysBoundedDuringGrowth) {
  ConsistentHashRing ring(77);
  for (int i = 0; i < 128; ++i) {
    ring.add_node(GetParam());
    if (ring.node_count() >= 8) {
      EXPECT_LT(ring.sigma_qn(), 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, ChGrowth,
                         ::testing::Values(std::size_t{8}, std::size_t{32},
                                           std::size_t{64}));

}  // namespace
}  // namespace cobalt::ch
