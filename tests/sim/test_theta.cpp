// Tests for the theta parameter-selection objective (section 4.1.2).

#include "sim/theta.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cobalt::sim {
namespace {

TEST(Theta, NormalizationMakesExtremesComparable) {
  // The largest Vmin contributes alpha to its theta; the largest sigma
  // contributes beta to its theta.
  const std::vector<std::uint64_t> vmins{8, 128};
  const std::vector<double> sigmas{0.20, 0.05};
  const auto pts = compute_theta(vmins, sigmas, 0.5);
  ASSERT_EQ(pts.size(), 2u);
  // Vmin=8: 0.5*(8/128) + 0.5*(0.20/0.20) = 0.03125 + 0.5
  EXPECT_NEAR(pts[0].theta, 0.53125, 1e-12);
  // Vmin=128: 0.5*1 + 0.5*(0.05/0.20) = 0.5 + 0.125
  EXPECT_NEAR(pts[1].theta, 0.625, 1e-12);
}

TEST(Theta, AlphaZeroSelectsBestQuality) {
  const std::vector<std::uint64_t> vmins{8, 16, 32};
  const std::vector<double> sigmas{0.3, 0.2, 0.1};
  const auto pts = compute_theta(vmins, sigmas, 0.0);
  EXPECT_EQ(argmin_theta(pts).vmin, 32u);
}

TEST(Theta, AlphaOneSelectsSmallestGroups) {
  const std::vector<std::uint64_t> vmins{8, 16, 32};
  const std::vector<double> sigmas{0.3, 0.2, 0.1};
  const auto pts = compute_theta(vmins, sigmas, 1.0);
  EXPECT_EQ(argmin_theta(pts).vmin, 8u);
}

TEST(Theta, InteriorMinimumWithBalancedWeights) {
  // A convex trade-off (sigma halving per doubling of Vmin, like the
  // paper's ~30% rule but steeper) has an interior argmin.
  const std::vector<std::uint64_t> vmins{8, 16, 32, 64, 128};
  const std::vector<double> sigmas{0.32, 0.16, 0.08, 0.04, 0.02};
  const auto pts = compute_theta(vmins, sigmas, 0.5);
  const auto best = argmin_theta(pts);
  EXPECT_GT(best.vmin, 8u);
  EXPECT_LT(best.vmin, 128u);
}

TEST(Theta, RejectsBadInputs) {
  EXPECT_THROW((void)compute_theta({}, {}, 0.5), InvalidArgument);
  EXPECT_THROW((void)compute_theta({8}, {0.1, 0.2}, 0.5), InvalidArgument);
  EXPECT_THROW((void)compute_theta({8}, {0.1}, 1.5), InvalidArgument);
  EXPECT_THROW((void)argmin_theta({}), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::sim
