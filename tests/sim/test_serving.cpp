// Tests for the request-level serving simulation: the queueing engine
// itself (arrival processes, slowdowns, repair-work competition, spec
// validation) and the two properties the scenario layer leans on -
// conservation (the served stream is exactly the workload stream, node
// by node) and determinism (same seed, byte-identical CSV artifacts) -
// across all seven placement backends.

#include "sim/serving.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "kv/store.hpp"

namespace cobalt::sim {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Per-backend replicated-store factory, mirroring the footprint used
/// by the kv-layer suites.
template <typename StoreT>
StoreT make_store(std::uint64_t seed, std::size_t replication);

template <>
kv::KvStore make_store<kv::KvStore>(std::uint64_t seed,
                                    std::size_t replication) {
  return kv::KvStore({cfg(8, 8, seed), 1}, replication);
}

template <>
kv::GlobalKvStore make_store<kv::GlobalKvStore>(std::uint64_t seed,
                                                std::size_t replication) {
  return kv::GlobalKvStore({cfg(8, 1, seed), 1}, replication);
}

template <>
kv::ChKvStore make_store<kv::ChKvStore>(std::uint64_t seed,
                                        std::size_t replication) {
  return kv::ChKvStore({seed, 16}, replication);
}

template <>
kv::HrwKvStore make_store<kv::HrwKvStore>(std::uint64_t seed,
                                          std::size_t replication) {
  return kv::HrwKvStore({seed, 12}, replication);
}

template <>
kv::JumpKvStore make_store<kv::JumpKvStore>(std::uint64_t seed,
                                            std::size_t replication) {
  return kv::JumpKvStore({seed, 12}, replication);
}

template <>
kv::MaglevKvStore make_store<kv::MaglevKvStore>(std::uint64_t seed,
                                                std::size_t replication) {
  return kv::MaglevKvStore({seed, 12}, replication);
}

template <>
kv::BoundedChKvStore make_store<kv::BoundedChKvStore>(std::uint64_t seed,
                                                      std::size_t replication) {
  return kv::BoundedChKvStore({seed, 16, 0.25, 12}, replication);
}

ServingSpec uniform_spec(std::size_t keys, std::size_t requests) {
  ServingSpec spec;
  spec.workload.distribution = KeyDistribution::kUniform;
  spec.workload.key_count = keys;
  spec.requests = requests;
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

template <typename StoreT>
class ServingStoreSuite : public ::testing::Test {};

using StoreTypes =
    ::testing::Types<kv::KvStore, kv::GlobalKvStore, kv::ChKvStore,
                     kv::HrwKvStore, kv::JumpKvStore, kv::MaglevKvStore,
                     kv::BoundedChKvStore>;
TYPED_TEST_SUITE(ServingStoreSuite, StoreTypes);

// Conservation: with k = 1, identical service times, and primary
// routing, the sim is a deterministic function of the workload stream -
// replaying ServingSim::workload_generator through owner_of must
// reproduce the per-node request totals *exactly*, and every issued
// request completes.
TYPED_TEST(ServingStoreSuite, RequestStreamIsConservedAtKOne) {
  auto store = make_store<TypeParam>(921, 1);
  for (int n = 0; n < 6; ++n) store.add_node();
  ServingSpec spec = uniform_spec(300, 2500);
  spec.arrival_rate_rps = 60000.0;
  spec.service_time_us = 50.0;
  const std::uint64_t seed = 77;
  const ServingOutcome outcome =
      run_steady_serving(store, spec, kv::ReadPolicy::kPrimary, seed);
  EXPECT_EQ(outcome.issued, spec.requests);
  EXPECT_EQ(outcome.failed, 0u);
  EXPECT_EQ(outcome.completed, spec.requests);
  EXPECT_EQ(outcome.latency.count(), spec.requests);

  WorkloadGenerator replay = ServingSim::workload_generator(spec, seed);
  std::vector<std::uint64_t> expected(store.backend().node_slot_count(), 0);
  for (std::size_t i = 0; i < spec.requests; ++i) {
    const placement::NodeId owner =
        store.owner_of(replay.key_at(replay.next_index()));
    ASSERT_NE(owner, placement::kInvalidNode);
    ++expected[owner];
  }
  ASSERT_LE(outcome.nodes.size(), expected.size());
  std::uint64_t served = 0;
  for (std::size_t n = 0; n < expected.size(); ++n) {
    const std::uint64_t got =
        n < outcome.nodes.size() ? outcome.nodes[n].requests : 0;
    EXPECT_EQ(got, expected[n]) << "node " << n;
    served += got;
  }
  EXPECT_EQ(served, spec.requests);
}

// Determinism: two runs from the same (spec, seed) - including writes
// and the queue-depth-probing read policy - emit byte-identical latency
// and per-node CSVs.
TYPED_TEST(ServingStoreSuite, SameSeedRunsEmitByteIdenticalCsvs) {
  ServingSpec spec;
  spec.workload.distribution = KeyDistribution::kHotspot;
  spec.workload.key_count = 200;
  spec.requests = 1500;
  spec.arrival_rate_rps = 50000.0;
  spec.write_fraction = 0.2;
  const std::string base = ::testing::TempDir() + "cobalt_serving_";
  std::array<std::string, 2> latency_paths;
  std::array<std::string, 2> node_paths;
  for (int run = 0; run < 2; ++run) {
    auto store = make_store<TypeParam>(922, 2);
    for (int n = 0; n < 5; ++n) store.add_node();
    const ServingOutcome outcome =
        run_steady_serving(store, spec, kv::ReadPolicy::kLeastLoaded, 13);
    EXPECT_EQ(outcome.completed + outcome.failed, outcome.issued);
    latency_paths[run] = base + "latency_" + std::to_string(run) + ".csv";
    node_paths[run] = base + "nodes_" + std::to_string(run) + ".csv";
    write_latency_csv(outcome, latency_paths[run]);
    write_node_csv(outcome, node_paths[run]);
  }
  const std::string latency_a = slurp(latency_paths[0]);
  EXPECT_FALSE(latency_a.empty());
  EXPECT_EQ(latency_a, slurp(latency_paths[1]));
  const std::string nodes_a = slurp(node_paths[0]);
  EXPECT_FALSE(nodes_a.empty());
  EXPECT_EQ(nodes_a, slurp(node_paths[1]));
}

TEST(ServingSim, ClosedLoopServesTheStreamBackToBack) {
  // One node, four clients, zero think time: the node never idles, so
  // the makespan is exactly requests x service time, and the queue
  // never holds more jobs than there are clients.
  ServingSpec spec = uniform_spec(10, 200);
  spec.arrivals = ArrivalProcess::kClosedLoop;
  spec.clients = 4;
  spec.service_time_us = 10.0;
  ServingSim sim(spec, 5);
  sim.set_read_router(
      [](const std::string&) { return placement::NodeId{0}; });
  const ServingOutcome outcome = sim.run();
  EXPECT_EQ(outcome.completed, 200u);
  EXPECT_DOUBLE_EQ(outcome.makespan_us, 2000.0);
  ASSERT_EQ(outcome.nodes.size(), 1u);
  EXPECT_EQ(outcome.nodes[0].requests, 200u);
  EXPECT_LE(outcome.nodes[0].max_queue_depth, 4u);
  EXPECT_DOUBLE_EQ(outcome.nodes[0].busy_us, 2000.0);
}

TEST(ServingSim, SlowdownScalesServiceTime) {
  // A single sequential client alternating between two nodes: the 4x
  // slow node accumulates exactly 4x the busy time for the same number
  // of requests.
  ServingSpec spec = uniform_spec(10, 100);
  spec.arrivals = ArrivalProcess::kClosedLoop;
  spec.clients = 1;
  spec.service_time_us = 10.0;
  ServingSim sim(spec, 9);
  sim.set_node_slowdown(1, 4.0);
  std::size_t next = 0;
  sim.set_read_router([&next](const std::string&) {
    return static_cast<placement::NodeId>(next++ % 2);
  });
  const ServingOutcome outcome = sim.run();
  EXPECT_EQ(outcome.completed, 100u);
  ASSERT_EQ(outcome.nodes.size(), 2u);
  EXPECT_EQ(outcome.nodes[0].requests, 50u);
  EXPECT_EQ(outcome.nodes[1].requests, 50u);
  EXPECT_DOUBLE_EQ(outcome.nodes[0].busy_us, 500.0);
  EXPECT_DOUBLE_EQ(outcome.nodes[1].busy_us, 2000.0);
}

TEST(ServingSim, RepairWorkCompetesWithForegroundRequests) {
  // 100us of repair work enqueued at time zero heads the FIFO: the
  // first request waits behind it, and the node's busy time covers
  // both job classes.
  ServingSpec spec = uniform_spec(10, 10);
  spec.arrivals = ArrivalProcess::kClosedLoop;
  spec.clients = 1;
  spec.service_time_us = 10.0;
  ServingSim sim(spec, 11);
  sim.set_read_router(
      [](const std::string&) { return placement::NodeId{0}; });
  sim.add_repair_work(0, 100.0);
  const ServingOutcome outcome = sim.run();
  EXPECT_EQ(outcome.completed, 10u);
  EXPECT_DOUBLE_EQ(outcome.makespan_us, 200.0);
  ASSERT_EQ(outcome.nodes.size(), 1u);
  EXPECT_EQ(outcome.nodes[0].repair_jobs, 1u);
  EXPECT_DOUBLE_EQ(outcome.nodes[0].busy_us, 200.0);
}

TEST(ServingSim, CountsUnroutableRequestsAsFailed) {
  ServingSpec spec = uniform_spec(10, 50);
  spec.arrivals = ArrivalProcess::kClosedLoop;
  spec.clients = 4;
  ServingSim sim(spec, 3);
  sim.set_read_router(
      [](const std::string&) { return placement::kInvalidNode; });
  const ServingOutcome outcome = sim.run();
  EXPECT_EQ(outcome.issued, 50u);
  EXPECT_EQ(outcome.failed, 50u);
  EXPECT_EQ(outcome.completed, 0u);
}

TEST(ServingSim, ValidatesSpecAndIsSingleUse) {
  const ServingSpec good = uniform_spec(10, 5);
  ServingSpec bad = good;
  bad.requests = 0;
  EXPECT_THROW(ServingSim(bad, 1), InvalidArgument);
  bad = good;
  bad.service_time_us = 0.0;
  EXPECT_THROW(ServingSim(bad, 1), InvalidArgument);
  bad = good;
  bad.write_fraction = 1.5;
  EXPECT_THROW(ServingSim(bad, 1), InvalidArgument);
  bad = good;
  bad.arrival_rate_rps = 0.0;
  EXPECT_THROW(ServingSim(bad, 1), InvalidArgument);
  bad = good;
  bad.arrivals = ArrivalProcess::kClosedLoop;
  bad.clients = 0;
  EXPECT_THROW(ServingSim(bad, 1), InvalidArgument);

  ServingSim unrouted(good, 1);
  EXPECT_THROW((void)unrouted.run(), InvalidArgument);

  ServingSim sim(good, 1);
  sim.set_read_router(
      [](const std::string&) { return placement::NodeId{0}; });
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), InvalidArgument);
}

TEST(ServingScenarios, FlashCrowdPricesRepairIntoTheQueues) {
  auto store = make_store<kv::ChKvStore>(923, 2);
  for (int n = 0; n < 5; ++n) store.add_node();
  ServingSpec spec = uniform_spec(400, 3000);
  spec.arrival_rate_rps = 40000.0;
  spec.write_fraction = 0.1;
  const FlashCrowdOutcome out =
      run_flash_crowd(store, spec, kv::ReadPolicy::kLeastLoaded, 31, 3);
  EXPECT_EQ(store.backend().node_count(), 8u);
  EXPECT_GT(out.repair_work_us, 0.0);
  EXPECT_EQ(out.serving.issued, spec.requests);
  EXPECT_EQ(out.serving.completed + out.serving.failed, spec.requests);
  std::uint64_t repair_jobs = 0;
  for (const NodeServingStats& node : out.serving.nodes) {
    repair_jobs += node.repair_jobs;
  }
  EXPECT_GT(repair_jobs, 0u);
  // The phase mark at the join partitions the latency samples.
  EXPECT_EQ(out.serving.latency_before.count() +
                out.serving.latency_after.count(),
            out.serving.completed);
  EXPECT_GT(out.serving.latency_before.count(), 0u);
  EXPECT_GT(out.serving.latency_after.count(), 0u);
}

TEST(ServingScenarios, HotspotShiftConservesTheStream) {
  auto store = make_store<kv::HrwKvStore>(924, 2);
  for (int n = 0; n < 6; ++n) store.add_node();
  ServingSpec spec;
  spec.workload.distribution = KeyDistribution::kHotspot;
  spec.workload.key_count = 300;
  spec.requests = 3000;
  spec.arrival_rate_rps = 50000.0;
  const ServingOutcome outcome =
      run_hotspot_shift(store, spec, kv::ReadPolicy::kPrimary, 17);
  EXPECT_EQ(outcome.issued, spec.requests);
  EXPECT_EQ(outcome.completed, spec.requests);
  EXPECT_EQ(outcome.latency_before.count() + outcome.latency_after.count(),
            outcome.completed);
  EXPECT_GT(outcome.latency_after.count(), 0u);
}

TEST(ServingScenarios, LeastLoadedRoutesAroundTheSlowNode) {
  // The gray-failure scenario the read policies exist for: the busiest
  // primary runs 8x slow but keeps answering. Primary routing piles
  // its keys' reads onto the crawling node; least-loaded probes the
  // live queue depths and walks around it.
  ServingSpec spec = uniform_spec(300, 6000);
  spec.arrival_rate_rps = 60000.0;
  SlowNodeOutcome primary = [&] {
    auto store = make_store<kv::MaglevKvStore>(925, 3);
    for (int n = 0; n < 6; ++n) store.add_node();
    return run_slow_node(store, spec, kv::ReadPolicy::kPrimary, 19, 8.0);
  }();
  SlowNodeOutcome least_loaded = [&] {
    auto store = make_store<kv::MaglevKvStore>(925, 3);
    for (int n = 0; n < 6; ++n) store.add_node();
    return run_slow_node(store, spec, kv::ReadPolicy::kLeastLoaded, 19, 8.0);
  }();
  EXPECT_EQ(primary.slow_node, least_loaded.slow_node);
  EXPECT_LT(least_loaded.serving.p99(), primary.serving.p99());
}

// --- fault-plan serving (cluster::FaultPlan wired into the sim) ------

TEST(ServingFaults, ReadsFailOverPastACrashedReplicaWindow) {
  // One node crashes for the middle of the run. With the full replica
  // set as candidates, every read fails over to a live copy: nothing
  // fails, and the phase split brackets the window cleanly.
  auto store = make_store<kv::ChKvStore>(931, 3);
  for (int n = 0; n < 6; ++n) store.add_node();
  ServingSpec spec = uniform_spec(300, 6000);
  spec.arrival_rate_rps = 60000.0;

  cluster::FaultPlan plan(5);
  ServingSim probe(spec, /*seed=*/7);
  const cluster::SimTime mid = 0.5 * probe.expected_duration_us();
  plan.add_crash_window(2, mid, mid + 0.25 * probe.expected_duration_us());

  const ServingOutcome outcome =
      run_faulty_serving(store, spec, plan, mid, /*seed=*/7);
  EXPECT_EQ(outcome.issued, spec.requests);
  EXPECT_EQ(outcome.failed, 0u);  // k=3: always a live candidate
  EXPECT_EQ(outcome.completed, spec.requests);
  EXPECT_EQ(outcome.issued_before + outcome.issued_after, outcome.issued);
  EXPECT_DOUBLE_EQ(outcome.availability_before(), 1.0);
  EXPECT_DOUBLE_EQ(outcome.availability_after(), 1.0);
}

TEST(ServingFaults, PartitionedMinorityFailsItsUnreplicatedReads) {
  // k=1 leaves no failover candidate: reads owned by the partitioned
  // node fail during the episode and only then - availability dips
  // inside the fault window, stays 1.0 outside it.
  auto store = make_store<kv::ChKvStore>(932, 1);
  for (int n = 0; n < 6; ++n) store.add_node();
  ServingSpec spec = uniform_spec(300, 8000);
  spec.arrival_rate_rps = 60000.0;

  cluster::FaultPlan plan(5);
  ServingSim probe(spec, /*seed=*/8);
  const cluster::SimTime start = 0.4 * probe.expected_duration_us();
  const cluster::SimTime end = 0.7 * probe.expected_duration_us();
  plan.add_partition("minority", start, end, {1, 4});

  const ServingOutcome outcome =
      run_faulty_serving(store, spec, plan, start, /*seed=*/8);
  EXPECT_EQ(outcome.issued, spec.requests);
  EXPECT_GT(outcome.failed, 0u);
  EXPECT_EQ(outcome.failed_before, 0u);  // the window starts at the mark
  EXPECT_DOUBLE_EQ(outcome.availability_before(), 1.0);
  EXPECT_LT(outcome.availability_after(), 1.0);
  EXPECT_EQ(outcome.completed + outcome.failed, outcome.issued);
}

TEST(ServingFaults, WritesQueueAgainstTheDeadlineOrFail) {
  // A write-only stream against a replica that is down for a while:
  // with a generous deadline the legs queue until recovery and every
  // request completes; with no deadline the same writes fail.
  const auto run_with_deadline = [](cluster::SimTime deadline) {
    auto store = make_store<kv::ChKvStore>(933, 2);
    for (int n = 0; n < 4; ++n) store.add_node();
    ServingSpec spec = uniform_spec(200, 3000);
    spec.arrival_rate_rps = 60000.0;
    spec.write_fraction = 1.0;
    spec.write_deadline_us = deadline;

    cluster::FaultPlan plan(6);
    ServingSim probe(spec, /*seed=*/9);
    const cluster::SimTime horizon = probe.expected_duration_us();
    plan.add_crash_window(1, 0.2 * horizon, 0.5 * horizon);
    return run_faulty_serving(store, spec, plan, 0.2 * horizon, /*seed=*/9);
  };

  const ServingOutcome patient = run_with_deadline(1e9);
  EXPECT_EQ(patient.failed, 0u);
  EXPECT_EQ(patient.completed, patient.issued);

  const ServingOutcome strict = run_with_deadline(0.0);
  EXPECT_GT(strict.failed, 0u);
  EXPECT_EQ(strict.failed_before, 0u);
  EXPECT_LT(strict.availability_after(), 1.0);
  EXPECT_EQ(strict.completed + strict.failed, strict.issued);
}

}  // namespace
}  // namespace cobalt::sim
