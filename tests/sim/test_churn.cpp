// Tests for the sustained-churn harness.

#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace cobalt::sim {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(Churn, GlobalChurnNeverRefusesAndStaysBalanced) {
  const auto result = run_global_churn(cfg(8, 1, 1), 40, 100);
  EXPECT_EQ(result.refused_removals, 0u);
  EXPECT_EQ(result.completed_removals, 100u);
  ASSERT_EQ(result.sigma_series.size(), 100u);
  for (const double sigma : result.sigma_series) {
    EXPECT_LT(sigma, 0.2);  // greedy keeps counts within ~2 of the mean
  }
}

TEST(Churn, LocalChurnKeepsPopulationAndSanity) {
  const auto result = run_local_churn(cfg(8, 8, 2), 64, 150);
  EXPECT_EQ(result.sigma_series.size(), 150u);
  EXPECT_GT(result.completed_removals, 0u);
  EXPECT_GT(result.final_groups, 0u);
  for (const double sigma : result.sigma_series) {
    EXPECT_GE(sigma, 0.0);
    EXPECT_LT(sigma, 1.0);
  }
}

TEST(Churn, RefusalsAreRareWithRoomyGroups) {
  // With a single group (Vmin >= population) every removal is an
  // intra-group redistribution; refusals can only come from the
  // (rarely infeasible) count bound, which the single group's complete
  // buddy set always satisfies.
  const auto result = run_local_churn(cfg(8, 64, 3), 48, 100);
  EXPECT_EQ(result.refused_removals, 0u);
  EXPECT_EQ(result.final_groups, 1u);
}

TEST(Churn, SigmaStaysBoundedUnderSustainedLocalChurn) {
  const auto result = run_local_churn(cfg(32, 32, 4), 128, 200);
  double late = 0.0;
  for (std::size_t i = 150; i < 200; ++i) late += result.sigma_series[i];
  late /= 50.0;
  // The plateau band of figure 4 at (32,32) is ~10%; churn should not
  // blow it past a generous multiple.
  EXPECT_LT(late, 0.30);
}

TEST(Churn, DeterministicPerSeed) {
  const auto a = run_local_churn(cfg(8, 8, 7), 40, 60);
  const auto b = run_local_churn(cfg(8, 8, 7), 40, 60);
  EXPECT_EQ(a.sigma_series, b.sigma_series);
  EXPECT_EQ(a.refused_removals, b.refused_removals);
}

TEST(Churn, Validation) {
  EXPECT_THROW((void)run_local_churn(cfg(8, 8, 1), 1, 10), InvalidArgument);
  EXPECT_THROW((void)run_global_churn(cfg(8, 1, 1), 0, 10), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::sim
