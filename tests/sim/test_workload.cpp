// Tests for the synthetic workload generators.

#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace cobalt::sim {
namespace {

WorkloadSpec spec_of(KeyDistribution d, std::size_t keys = 1000) {
  WorkloadSpec spec;
  spec.distribution = d;
  spec.key_count = keys;
  return spec;
}

TEST(Workload, IndicesAlwaysInRange) {
  for (const auto d : {KeyDistribution::kUniform, KeyDistribution::kZipf,
                       KeyDistribution::kHotspot,
                       KeyDistribution::kSequential}) {
    WorkloadGenerator gen(spec_of(d, 97), 1);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_LT(gen.next_index(), 97u) << "distribution "
                                       << static_cast<int>(d);
    }
  }
}

TEST(Workload, KeysCarryThePrefix) {
  WorkloadSpec spec = spec_of(KeyDistribution::kUniform, 10);
  spec.prefix = "asset::";
  WorkloadGenerator gen(spec, 2);
  EXPECT_EQ(gen.next_key().rfind("asset::", 0), 0u);
  EXPECT_EQ(gen.key_at(7), "asset::7");
  EXPECT_THROW((void)gen.key_at(10), InvalidArgument);
}

TEST(Workload, SequentialIsRoundRobin) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kSequential, 5), 3);
  std::vector<std::size_t> seen;
  for (int i = 0; i < 11; ++i) seen.push_back(gen.next_index());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0}));
}

TEST(Workload, UniformShowsNoSkew) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kUniform, 1000), 4);
  // The top 10% of keys should draw about 10% of accesses (a little
  // more from sampling noise).
  const double skew = measure_skew(gen, 50000, 0.10);
  EXPECT_NEAR(skew, 0.12, 0.04);
}

TEST(Workload, ZipfConcentratesOnTheHead) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kZipf, 1000), 5);
  // Zipf(s=1, N=1000): the top 10% of ranks carry ~2/3 of the mass.
  const double skew = measure_skew(gen, 50000, 0.10);
  EXPECT_GT(skew, 0.55);
  EXPECT_LT(skew, 0.80);
}

TEST(Workload, HotspotFollowsItsParameters) {
  WorkloadSpec spec = spec_of(KeyDistribution::kHotspot, 1000);
  spec.hot_key_fraction = 0.05;
  spec.hot_access_fraction = 0.80;
  WorkloadGenerator gen(spec, 6);
  std::size_t hot_hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.next_index() < 50) ++hot_hits;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / kDraws, 0.80, 0.02);
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadGenerator a(spec_of(KeyDistribution::kZipf), 7);
  WorkloadGenerator b(spec_of(KeyDistribution::kZipf), 7);
  WorkloadGenerator c(spec_of(KeyDistribution::kZipf), 8);
  bool all_equal = true;
  bool any_differs = false;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.next_index();
    all_equal &= (va == b.next_index());
    any_differs |= (va != c.next_index());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs);
}

TEST(Workload, ValidatesSpec) {
  WorkloadSpec bad = spec_of(KeyDistribution::kUniform, 0);
  EXPECT_THROW(WorkloadGenerator(bad, 1), InvalidArgument);
  WorkloadSpec bad_hot = spec_of(KeyDistribution::kHotspot);
  bad_hot.hot_key_fraction = 0.0;
  EXPECT_THROW(WorkloadGenerator(bad_hot, 1), InvalidArgument);
  bad_hot.hot_key_fraction = 0.5;
  bad_hot.hot_access_fraction = 1.5;
  EXPECT_THROW(WorkloadGenerator(bad_hot, 1), InvalidArgument);
}

TEST(Workload, SingleKeyAlwaysReturnsIndexZero) {
  for (const auto d : {KeyDistribution::kUniform, KeyDistribution::kZipf,
                       KeyDistribution::kHotspot,
                       KeyDistribution::kSequential}) {
    WorkloadGenerator gen(spec_of(d, 1), 11);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(gen.next_index(), 0u) << "distribution "
                                      << static_cast<int>(d);
    }
    EXPECT_EQ(gen.key_at(0), "key/0");
  }
}

TEST(Workload, HotspotWithAllKeysHotDegeneratesToUniform) {
  // hot_key_fraction = 1 makes the hot set the whole key space: both
  // branches of the draw collapse to a uniform pick.
  WorkloadSpec spec = spec_of(KeyDistribution::kHotspot, 1000);
  spec.hot_key_fraction = 1.0;
  spec.hot_access_fraction = 0.90;
  WorkloadGenerator gen(spec, 12);
  const double skew = measure_skew(gen, 50000, 0.10);
  EXPECT_NEAR(skew, 0.12, 0.04);
}

TEST(Workload, HotspotAccessFractionPinsTheBoundaries) {
  // hot_access_fraction = 1: every draw lands in the hot set;
  // hot_access_fraction = 0: every draw lands in the cold set.
  WorkloadSpec spec = spec_of(KeyDistribution::kHotspot, 100);
  spec.hot_key_fraction = 0.10;
  spec.hot_access_fraction = 1.0;
  WorkloadGenerator hot(spec, 13);
  for (int i = 0; i < 2000; ++i) ASSERT_LT(hot.next_index(), 10u);
  spec.hot_access_fraction = 0.0;
  WorkloadGenerator cold(spec, 14);
  for (int i = 0; i < 2000; ++i) ASSERT_GE(cold.next_index(), 10u);
}

TEST(Workload, ZipfRankFrequencyDecaysMonotonically) {
  // Zipf(s=1): rank r draws ~ 1/r of the mass, so the *average*
  // per-rank frequency halves from each octave band [2^j, 2^(j+1)) to
  // the next. Asserting a >= 1.4x drop between consecutive band
  // averages pins the 1/rank shape while staying robust to per-rank
  // sampling noise in the tail.
  WorkloadGenerator gen(spec_of(KeyDistribution::kZipf, 64), 15);
  std::vector<std::size_t> counts(64, 0);
  constexpr std::size_t kDraws = 200000;
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[gen.next_index()];
  // Rank 1 (index 0) carries 1/H_64 of the mass.
  double h64 = 0.0;
  for (std::size_t r = 1; r <= 64; ++r) h64 += 1.0 / static_cast<double>(r);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 1.0 / h64, 0.01);
  std::vector<double> band_avg;
  for (std::size_t lo = 1; lo < 64; lo *= 2) {
    // Octave of 1-based ranks [lo, 2*lo) = indices [lo-1, 2*lo-1).
    double sum = 0.0;
    for (std::size_t rank = lo; rank < 2 * lo; ++rank) {
      sum += static_cast<double>(counts[rank - 1]);
    }
    band_avg.push_back(sum / static_cast<double>(lo));
  }
  for (std::size_t band = 1; band < band_avg.size(); ++band) {
    EXPECT_GT(band_avg[band - 1], 1.4 * band_avg[band]) << "band " << band;
  }
}

TEST(Workload, MeasureSkewValidation) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kUniform), 9);
  EXPECT_THROW((void)measure_skew(gen, 0, 0.1), InvalidArgument);
  EXPECT_THROW((void)measure_skew(gen, 10, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::sim
