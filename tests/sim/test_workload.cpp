// Tests for the synthetic workload generators.

#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace cobalt::sim {
namespace {

WorkloadSpec spec_of(KeyDistribution d, std::size_t keys = 1000) {
  WorkloadSpec spec;
  spec.distribution = d;
  spec.key_count = keys;
  return spec;
}

TEST(Workload, IndicesAlwaysInRange) {
  for (const auto d : {KeyDistribution::kUniform, KeyDistribution::kZipf,
                       KeyDistribution::kHotspot,
                       KeyDistribution::kSequential}) {
    WorkloadGenerator gen(spec_of(d, 97), 1);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_LT(gen.next_index(), 97u) << "distribution "
                                       << static_cast<int>(d);
    }
  }
}

TEST(Workload, KeysCarryThePrefix) {
  WorkloadSpec spec = spec_of(KeyDistribution::kUniform, 10);
  spec.prefix = "asset::";
  WorkloadGenerator gen(spec, 2);
  EXPECT_EQ(gen.next_key().rfind("asset::", 0), 0u);
  EXPECT_EQ(gen.key_at(7), "asset::7");
  EXPECT_THROW((void)gen.key_at(10), InvalidArgument);
}

TEST(Workload, SequentialIsRoundRobin) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kSequential, 5), 3);
  std::vector<std::size_t> seen;
  for (int i = 0; i < 11; ++i) seen.push_back(gen.next_index());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0}));
}

TEST(Workload, UniformShowsNoSkew) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kUniform, 1000), 4);
  // The top 10% of keys should draw about 10% of accesses (a little
  // more from sampling noise).
  const double skew = measure_skew(gen, 50000, 0.10);
  EXPECT_NEAR(skew, 0.12, 0.04);
}

TEST(Workload, ZipfConcentratesOnTheHead) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kZipf, 1000), 5);
  // Zipf(s=1, N=1000): the top 10% of ranks carry ~2/3 of the mass.
  const double skew = measure_skew(gen, 50000, 0.10);
  EXPECT_GT(skew, 0.55);
  EXPECT_LT(skew, 0.80);
}

TEST(Workload, HotspotFollowsItsParameters) {
  WorkloadSpec spec = spec_of(KeyDistribution::kHotspot, 1000);
  spec.hot_key_fraction = 0.05;
  spec.hot_access_fraction = 0.80;
  WorkloadGenerator gen(spec, 6);
  std::size_t hot_hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.next_index() < 50) ++hot_hits;
  }
  EXPECT_NEAR(static_cast<double>(hot_hits) / kDraws, 0.80, 0.02);
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadGenerator a(spec_of(KeyDistribution::kZipf), 7);
  WorkloadGenerator b(spec_of(KeyDistribution::kZipf), 7);
  WorkloadGenerator c(spec_of(KeyDistribution::kZipf), 8);
  bool all_equal = true;
  bool any_differs = false;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.next_index();
    all_equal &= (va == b.next_index());
    any_differs |= (va != c.next_index());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs);
}

TEST(Workload, ValidatesSpec) {
  WorkloadSpec bad = spec_of(KeyDistribution::kUniform, 0);
  EXPECT_THROW(WorkloadGenerator(bad, 1), InvalidArgument);
  WorkloadSpec bad_hot = spec_of(KeyDistribution::kHotspot);
  bad_hot.hot_key_fraction = 0.0;
  EXPECT_THROW(WorkloadGenerator(bad_hot, 1), InvalidArgument);
  bad_hot.hot_key_fraction = 0.5;
  bad_hot.hot_access_fraction = 1.5;
  EXPECT_THROW(WorkloadGenerator(bad_hot, 1), InvalidArgument);
}

TEST(Workload, MeasureSkewValidation) {
  WorkloadGenerator gen(spec_of(KeyDistribution::kUniform), 9);
  EXPECT_THROW((void)measure_skew(gen, 0, 0.1), InvalidArgument);
  EXPECT_THROW((void)measure_skew(gen, 10, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::sim
