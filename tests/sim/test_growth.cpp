// Tests for the growth harness and multi-run averaging.

#include "sim/growth.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cobalt::sim {
namespace {

dht::Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  dht::Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(Growth, LocalSeriesHasOneSamplePerVnode) {
  const auto series = run_local_growth(cfg(8, 8, 1), 50, Metric::kSigmaQv);
  ASSERT_EQ(series.size(), 50u);
  // V = 1: a single vnode owns everything, deviation zero.
  EXPECT_NEAR(series[0], 0.0, 1e-12);
  for (double v : series) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Growth, GlobalSeriesSawtoothsToZeroAtPowersOfTwo) {
  const auto series = run_global_growth(cfg(16, 1, 2), 64);
  for (std::size_t v = 1; v <= 64; v *= 2) {
    EXPECT_NEAR(series[v - 1], 0.0, 1e-12) << "V = " << v;
  }
  // Between powers of two the deviation is strictly positive.
  EXPECT_GT(series[2], 0.0);   // V = 3
  EXPECT_GT(series[40], 0.0);  // V = 41
}

TEST(Growth, GroupCountSeriesIsMonotoneUnderCreation) {
  const auto series = run_local_growth(cfg(4, 4, 3), 120, Metric::kGroupCount);
  EXPECT_NEAR(series[0], 1.0, 0.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i], series[i - 1]) << "step " << i;
  }
  EXPECT_GT(series.back(), 4.0);
}

TEST(Growth, SigmaQgIsZeroWhileOneGroup) {
  const auto series = run_local_growth(cfg(8, 8, 4), 16, Metric::kSigmaQg);
  // Vmax = 16: a single group throughout, so sigma-bar(Qg) == 0.
  for (double v : series) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Growth, ChSeriesBoundedAndSeeded) {
  const auto a = run_ch_growth(10, 64, 32);
  const auto b = run_ch_growth(10, 64, 32);
  const auto c = run_ch_growth(11, 64, 32);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NEAR(a[0], 0.0, 1e-12);  // one node owns everything
}

TEST(Growth, LocalDeterministicPerSeed) {
  const auto a = run_local_growth(cfg(8, 4, 42), 80, Metric::kSigmaQv);
  const auto b = run_local_growth(cfg(8, 4, 42), 80, Metric::kSigmaQv);
  const auto c = run_local_growth(cfg(8, 4, 43), 80, Metric::kSigmaQv);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Growth, AverageRunsMatchesManualMean) {
  const auto make = [](std::uint64_t seed) {
    return std::vector<double>{static_cast<double>(seed % 7),
                               static_cast<double>(seed % 3)};
  };
  const auto avg = average_runs(5, 1, 2, make);
  double m0 = 0.0;
  double m1 = 0.0;
  for (std::size_t run = 0; run < 5; ++run) {
    const auto s = make(derive_seed(1, 2, run));
    m0 += s[0];
    m1 += s[1];
  }
  EXPECT_NEAR(avg[0], m0 / 5.0, 1e-12);
  EXPECT_NEAR(avg[1], m1 / 5.0, 1e-12);
}

TEST(Growth, AverageRunsParallelEqualsSequential) {
  const auto make = [](std::uint64_t seed) {
    return run_local_growth(cfg(4, 4, seed), 40, Metric::kSigmaQv);
  };
  const auto seq = average_runs(8, 7, 1, make, nullptr);
  ThreadPool pool(4);
  const auto par = average_runs(8, 7, 1, make, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_DOUBLE_EQ(seq[i], par[i]) << "index " << i;
  }
}

TEST(Growth, AveragingSmoothsRandomness) {
  // A single local run is noisy; the 100-run average of the same
  // experiment changes much less between disjoint run batches.
  const auto make = [](std::uint64_t seed) {
    return run_local_growth(cfg(8, 8, seed), 100, Metric::kSigmaQv);
  };
  const auto avg_a = average_runs(50, 1000, 1, make);
  const auto avg_b = average_runs(50, 2000, 1, make);
  const auto one_a = make(1);
  const auto one_b = make(2);
  double diff_avg = 0.0;
  double diff_one = 0.0;
  for (std::size_t i = 40; i < 100; ++i) {  // past the single-group zone
    diff_avg += std::abs(avg_a[i] - avg_b[i]);
    diff_one += std::abs(one_a[i] - one_b[i]);
  }
  EXPECT_LT(diff_avg, diff_one);
}

TEST(Growth, RejectsDegenerateArguments) {
  EXPECT_THROW((void)run_local_growth(cfg(8, 8, 1), 0, Metric::kSigmaQv),
               InvalidArgument);
  EXPECT_THROW((void)run_ch_growth(1, 0, 8), InvalidArgument);
  EXPECT_THROW(
      (void)average_runs(0, 1, 1, [](std::uint64_t) {
        return std::vector<double>{};
      }),
      InvalidArgument);
}

}  // namespace
}  // namespace cobalt::sim
