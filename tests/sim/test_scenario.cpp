// Tests for the backend-generic scenario drivers (sim/scenario.hpp):
// the churn driver's incrementally maintained live set and the
// movement-growth boundary conditions.

#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "kv/store.hpp"
#include "placement/hrw_backend.hpp"

namespace cobalt::sim {
namespace {

TEST(ChurnDriver, HoldsThePopulationWithoutRescanningSlots) {
  // Long churn at a small population: node ids are never reused, so
  // after 300 completed cycles the slot space is ~25x the population.
  // The driver must keep tracking the live set correctly regardless.
  placement::HrwBackend backend({7, 8});
  const auto outcome = run_churn(backend, 12, 300, 99);
  EXPECT_EQ(outcome.completed_removals, 300u);
  EXPECT_EQ(outcome.refused_removals, 0u);
  EXPECT_EQ(backend.node_count(), 12u);
  EXPECT_EQ(backend.node_slot_count(), 12u + 300u);
  std::size_t live = 0;
  for (placement::NodeId node = 0; node < backend.node_slot_count();
       ++node) {
    if (backend.is_live(node)) ++live;
  }
  EXPECT_EQ(live, 12u);
}

TEST(ChurnDriver, CountsNodesThatPredateTheCall) {
  // The one slot scan happens at entry, so nodes added before the
  // driver ran are churn victims like any other.
  placement::HrwBackend backend({8, 8});
  for (int n = 0; n < 3; ++n) backend.add_node();
  const auto outcome = run_churn(backend, 4, 50, 100);
  EXPECT_EQ(outcome.completed_removals, 50u);
  EXPECT_EQ(backend.node_count(), 7u);  // 3 preexisting + 4 grown
}

TEST(ChurnDriver, DeterministicPerSeed) {
  const auto run_once = [] {
    placement::HrwBackend backend({9, 8});
    return run_churn(backend, 10, 80, 123).sigma_series;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MovementGrowth, TargetOfTwoPerformsExactlyOneJoin) {
  // Boundary regression: target_nodes == 2 is one join past the
  // preload node and must be accepted, returning a one-element series.
  kv::HrwKvStore store({11, 10});
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back("k" + std::to_string(i));
  const auto moved = run_movement_growth(store, keys, 2);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(store.backend().node_count(), 2u);
  // The single join's movement is the store's entire movement total.
  EXPECT_EQ(moved[0],
            static_cast<double>(store.migration_stats().keys_moved_total));
  EXPECT_GT(moved[0], 0.0);
  EXPECT_EQ(store.size(), keys.size());
}

TEST(MovementGrowth, RejectsTargetsBelowTwo) {
  kv::HrwKvStore store({12, 10});
  std::vector<std::string> keys{"a", "b"};
  EXPECT_THROW((void)run_movement_growth(store, keys, 1), InvalidArgument);
  EXPECT_THROW((void)run_movement_growth(store, keys, 0), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::sim
