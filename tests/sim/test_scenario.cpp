// Tests for the backend-generic scenario drivers (sim/scenario.hpp)
// and their protocol-instrumented variants (sim/protocol_cost.hpp):
// the churn driver's incrementally maintained live set, the
// movement-growth boundary conditions, the replication scenarios
// (correlated failure, rolling upgrade), and the failure-during-repair
// scenario where a second rack crashes while the first crash's
// re-replication rounds are still queued on the protocol DES.

#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/topology.hpp"
#include "common/error.hpp"
#include "kv/store.hpp"
#include "placement/replication_spec.hpp"
#include "placement/hrw_backend.hpp"
#include "sim/protocol_cost.hpp"

namespace cobalt::sim {
namespace {

TEST(ChurnDriver, HoldsThePopulationWithoutRescanningSlots) {
  // Long churn at a small population: node ids are never reused, so
  // after 300 completed cycles the slot space is ~25x the population.
  // The driver must keep tracking the live set correctly regardless.
  placement::HrwBackend backend({7, 8});
  const auto outcome = run_churn(backend, 12, 300, 99);
  EXPECT_EQ(outcome.completed_removals, 300u);
  EXPECT_EQ(outcome.refused_removals, 0u);
  EXPECT_EQ(backend.node_count(), 12u);
  EXPECT_EQ(backend.node_slot_count(), 12u + 300u);
  std::size_t live = 0;
  for (placement::NodeId node = 0; node < backend.node_slot_count();
       ++node) {
    if (backend.is_live(node)) ++live;
  }
  EXPECT_EQ(live, 12u);
}

TEST(ChurnDriver, CountsNodesThatPredateTheCall) {
  // The one slot scan happens at entry, so nodes added before the
  // driver ran are churn victims like any other.
  placement::HrwBackend backend({8, 8});
  for (int n = 0; n < 3; ++n) backend.add_node();
  const auto outcome = run_churn(backend, 4, 50, 100);
  EXPECT_EQ(outcome.completed_removals, 50u);
  EXPECT_EQ(backend.node_count(), 7u);  // 3 preexisting + 4 grown
}

TEST(ChurnDriver, DeterministicPerSeed) {
  const auto run_once = [] {
    placement::HrwBackend backend({9, 8});
    return run_churn(backend, 10, 80, 123).sigma_series;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(MovementGrowth, TargetOfTwoPerformsExactlyOneJoin) {
  // Boundary regression: target_nodes == 2 is one join past the
  // preload node and must be accepted, returning a one-element series.
  kv::HrwKvStore store({11, 10});
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) keys.push_back("k" + std::to_string(i));
  const auto moved = run_movement_growth(store, keys, 2);
  ASSERT_EQ(moved.size(), 1u);
  EXPECT_EQ(store.backend().node_count(), 2u);
  // The single join's movement is the store's entire movement total.
  EXPECT_EQ(moved[0],
            static_cast<double>(store.migration_stats().keys_moved_total));
  EXPECT_GT(moved[0], 0.0);
  EXPECT_EQ(store.size(), keys.size());
}

TEST(MovementGrowth, RejectsTargetsBelowTwo) {
  kv::HrwKvStore store({12, 10});
  std::vector<std::string> keys{"a", "b"};
  EXPECT_THROW((void)run_movement_growth(store, keys, 1), InvalidArgument);
  EXPECT_THROW((void)run_movement_growth(store, keys, 0), InvalidArgument);
}

std::vector<std::string> scenario_keys(std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  return keys;
}

TEST(CorrelatedFailure, UnreplicatedRackFailureLosesItsKeys) {
  kv::HrwKvStore store({21, 10}, 1);
  const auto keys = scenario_keys(1500);
  const auto outcome = run_correlated_failure(store, 16, 3, keys, 77);
  EXPECT_EQ(outcome.failed, 3u);  // HRW never refuses
  EXPECT_EQ(outcome.refused, 0u);
  // The rack owned ~3/16 of the keys; all of them are lost at k=1.
  EXPECT_GT(outcome.keys_lost, 0u);
  EXPECT_NEAR(static_cast<double>(outcome.keys_lost), 1500.0 * 3 / 16,
              1500.0 * 0.1);
  EXPECT_GT(outcome.keys_rereplicated, 0u);
  EXPECT_TRUE(std::isfinite(outcome.sigma_after));
  EXPECT_EQ(store.backend().node_count(), 13u);
}

TEST(CorrelatedFailure, ReplicationClosesTheLossWindow) {
  // A single-node "rack" with k=2: no key can lose both copies.
  kv::ChKvStore store({22, 16}, 2);
  const auto keys = scenario_keys(1000);
  const auto outcome = run_correlated_failure(store, 12, 1, keys, 78);
  EXPECT_EQ(outcome.failed, 1u);
  EXPECT_EQ(outcome.keys_lost, 0u);
  EXPECT_GT(outcome.keys_rereplicated, 0u);
}

TEST(CorrelatedFailure, RackChoiceIsDeterministicPerSeed) {
  const auto run_once = [] {
    kv::HrwKvStore store({23, 10}, 2);
    const auto keys = scenario_keys(800);
    const auto outcome = run_correlated_failure(store, 12, 3, keys, 79);
    return outcome.keys_rereplicated;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(CorrelatedFailure, RejectsDegenerateRacks) {
  kv::HrwKvStore store({24, 10}, 2);
  const auto keys = scenario_keys(10);
  EXPECT_THROW((void)run_correlated_failure(store, 8, 0, keys, 1),
               InvalidArgument);
  EXPECT_THROW((void)run_correlated_failure(store, 8, 8, keys, 1),
               InvalidArgument);
}

TEST(RollingUpgrade, SweepsTheFleetWithoutLosingKeys) {
  kv::HrwKvStore store({25, 10}, 2);
  const auto keys = scenario_keys(1200);
  const auto outcome = run_rolling_upgrade(store, 10, keys);
  EXPECT_EQ(outcome.upgraded, 10u);  // HRW never refuses a drain
  EXPECT_EQ(outcome.refused, 0u);
  EXPECT_EQ(outcome.keys_lost, 0u);
  EXPECT_GT(outcome.keys_rereplicated, 0u);
  ASSERT_EQ(outcome.sigma_series.size(), 10u);
  // The population is back at full strength, all original nodes gone.
  EXPECT_EQ(store.backend().node_count(), 10u);
  for (placement::NodeId node = 0; node < 10; ++node) {
    EXPECT_FALSE(store.backend().is_live(node));
  }
  EXPECT_EQ(store.size(), keys.size());
}

TEST(FailureDuringRepair, SecondCrashLandsWhileRepairIsQueued) {
  // Two disjoint racks of 2 crash in sequence in a 14-node fleet at
  // k = 2. The store repairs each crash synchronously (accounting),
  // while the DES schedules both crashes' rounds: overlapping them can
  // only shorten the makespan against the quiescent-repair reference,
  // never change the message count.
  kv::HrwKvStore store({31, 10}, 2);
  const auto keys = scenario_keys(1200);
  const auto outcome = run_failure_during_repair(store, 14, 2, keys, 91);
  EXPECT_EQ(outcome.failed_first, 2u);  // HRW never refuses
  EXPECT_EQ(outcome.failed_second, 2u);
  EXPECT_EQ(outcome.refused, 0u);
  EXPECT_EQ(store.backend().node_count(), 10u);
  EXPECT_GT(outcome.keys_rereplicated, 0u);
  EXPECT_GT(outcome.totals.repair_copies, 0u);
  EXPECT_GT(outcome.overlapped.rounds, 0u);
  EXPECT_GE(outcome.serialized.makespan_us,
            outcome.overlapped.makespan_us - 1e-9);
  EXPECT_EQ(outcome.serialized.messages, outcome.overlapped.messages);
}

TEST(FailureDuringRepair, AccountingMatchesTheStoreChannels) {
  // The crash-phase totals are the store's replication channel, bit
  // for bit (the driver is cleared after preload, so compare deltas
  // over the crash phase - which is the whole channel delta here).
  kv::ChKvStore store({32, 16}, 3);
  const auto keys = scenario_keys(900);
  const auto before_lost = store.replication_stats().keys_lost;
  const auto before_copies = store.replication_stats().keys_rereplicated;
  const auto outcome = run_failure_during_repair(store, 12, 2, keys, 92);
  EXPECT_EQ(outcome.keys_lost,
            store.replication_stats().keys_lost - before_lost);
  EXPECT_EQ(outcome.totals.keys_lost, outcome.keys_lost);
  // Growth joins repair an empty store (zero copies) and preload puts
  // count as replica_writes, not repairs - so the whole channel delta
  // is the crash phase, which is exactly what the cleared driver saw.
  EXPECT_EQ(outcome.totals.repair_copies,
            store.replication_stats().keys_rereplicated - before_copies);
  EXPECT_EQ(outcome.totals.repair_copies, outcome.keys_rereplicated);
}

TEST(FailureDuringRepair, UnreplicatedCrashesLoseKeysReplicatedOnesLoseLess) {
  const auto keys = scenario_keys(1000);
  kv::JumpKvStore unreplicated({33, 10}, 1);
  const auto k1 = run_failure_during_repair(unreplicated, 12, 2, keys, 93);
  EXPECT_GT(k1.keys_lost, 0u);  // no redundancy: both racks lose keys

  kv::JumpKvStore replicated({33, 10}, 3);
  const auto k3 = run_failure_during_repair(replicated, 12, 2, keys, 93);
  EXPECT_LT(k3.keys_lost, k1.keys_lost);
}

TEST(FailureDuringRepair, DeterministicPerSeed) {
  const auto run_once = [] {
    kv::HrwKvStore store({34, 10}, 2);
    const auto keys = scenario_keys(600);
    const auto outcome = run_failure_during_repair(store, 11, 2, keys, 94);
    return std::pair{outcome.keys_rereplicated,
                     outcome.overlapped.makespan_us};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FailureDuringRepair, RejectsRacksThatLeaveNoSurvivor) {
  kv::HrwKvStore store({35, 10}, 2);
  const auto keys = scenario_keys(10);
  EXPECT_THROW((void)run_failure_during_repair(store, 8, 4, keys, 1),
               InvalidArgument);
  EXPECT_THROW((void)run_failure_during_repair(store, 8, 0, keys, 1),
               InvalidArgument);
}

TEST(RollingUpgrade, RefusedDrainsAreCountedAndSkipped) {
  // The local approach refuses some drains (no cross-group merge);
  // refusals must leave the node serving and lose nothing.
  kv::KvStore store = [] {
    dht::Config c;
    c.pmin = 8;
    c.vmin = 8;
    c.seed = 26;
    return kv::KvStore({c, 1}, 2);
  }();
  const auto keys = scenario_keys(600);
  const auto outcome = run_rolling_upgrade(store, 12, keys);
  EXPECT_EQ(outcome.upgraded + outcome.refused, 12u);
  EXPECT_EQ(outcome.keys_lost, 0u);
  EXPECT_EQ(store.backend().node_count(), 12u);
  EXPECT_EQ(store.size(), keys.size());
}

// --- topology-aware correlated failure ------------------------------

TEST(CorrelatedFailure, RackSpreadSurvivesAWholeRackCrash) {
  // The point of SpreadPolicy::kRack: no replica set lives entirely in
  // one rack, so crashing any whole rack loses nothing - and every
  // repair copy must travel across racks.
  const cluster::Topology topo = cluster::Topology::uniform(4, 3);
  const auto keys = scenario_keys(1200);
  for (const std::size_t k : {std::size_t{2}, std::size_t{3}}) {
    kv::HrwKvStore store(
        {31, 10}, placement::ReplicationSpec{k, placement::SpreadPolicy::kRack});
    const auto outcome = run_correlated_failure(store, 12, topo, 1, keys);
    EXPECT_EQ(outcome.failed, 3u) << "k=" << k;
    EXPECT_EQ(outcome.keys_lost, 0u)
        << "k=" << k << ": a spread replica set died with its rack";
    EXPECT_GT(outcome.keys_rereplicated, 0u);
    EXPECT_GT(outcome.keys_rereplicated_cross_rack, 0u)
        << "rack-spread repair must cross racks";
  }
}

TEST(CorrelatedFailure, UnspreadPlacementLosesKeysOnARackCrash) {
  // The same store without the spread policy: some replica sets land
  // entirely inside the victim rack, and those keys are gone.
  const cluster::Topology topo = cluster::Topology::uniform(4, 3);
  const auto keys = scenario_keys(1200);
  kv::HrwKvStore store(
      {31, 10}, placement::ReplicationSpec{2, placement::SpreadPolicy::kNone});
  const auto outcome = run_correlated_failure(store, 12, topo, 1, keys);
  EXPECT_EQ(outcome.failed, 3u);
  EXPECT_GT(outcome.keys_lost, 0u)
      << "unspread k=2 replica sets should collapse with the rack";
}

TEST(CorrelatedFailure, ZoneSpreadSurvivesAWholeZoneCrash) {
  // Zone spread at k=2 over 2 zones: crash every rack of one zone in
  // one plan - the surviving zone still holds a copy of everything.
  const cluster::Topology topo = cluster::Topology::uniform(4, 3, 2);
  const auto keys = scenario_keys(1000);
  kv::ChKvStore store(
      {33, 16}, placement::ReplicationSpec{2, placement::SpreadPolicy::kZone});
  for (std::size_t n = 0; n < 12; ++n) store.add_node();
  store.set_topology(&topo);
  for (const auto& key : keys) store.put(key, "v");
  std::vector<placement::NodeId> victims = topo.nodes_in_zone(0);
  const auto before = store.stats().replication;
  (void)store.fail_nodes(victims);
  const auto after = store.stats().replication;
  EXPECT_EQ(after.keys_lost, before.keys_lost)
      << "a zone-spread replica set died with its zone";
  EXPECT_GT(after.keys_rereplicated, before.keys_rereplicated);
}

TEST(CorrelatedFailure, TopologyOverloadIsDeterministic) {
  const cluster::Topology topo = cluster::Topology::uniform(3, 4);
  const auto keys = scenario_keys(600);
  std::vector<std::uint64_t> rereplicated;
  for (int i = 0; i < 2; ++i) {
    kv::JumpKvStore store(
        {35, 10},
        placement::ReplicationSpec{2, placement::SpreadPolicy::kRack});
    const auto outcome = run_correlated_failure(store, 12, topo, 2, keys);
    EXPECT_EQ(outcome.keys_lost, 0u);
    rereplicated.push_back(outcome.keys_rereplicated);
  }
  EXPECT_EQ(rereplicated[0], rereplicated[1]);
}

}  // namespace
}  // namespace cobalt::sim
