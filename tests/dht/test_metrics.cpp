// Tests for the balance-metric helpers.

#include "dht/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cobalt::dht {
namespace {

Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(BalanceReport, PerfectEqualityScoresZero) {
  const auto report = summarize_shares({0.25, 0.25, 0.25, 0.25});
  EXPECT_NEAR(report.sigma_rel, 0.0, 1e-12);
  EXPECT_NEAR(report.max_over_min, 1.0, 1e-12);
  EXPECT_NEAR(report.max_over_avg, 1.0, 1e-12);
  EXPECT_NEAR(report.gini, 0.0, 1e-12);
}

TEST(BalanceReport, KnownSkewedDistribution) {
  // Shares {1, 3}: mean 2, sigma 1 -> sigma_rel 0.5; ratio 3;
  // max/avg 1.5; Gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  const auto report = summarize_shares({1.0, 3.0});
  EXPECT_NEAR(report.sigma_rel, 0.5, 1e-12);
  EXPECT_NEAR(report.max_over_min, 3.0, 1e-12);
  EXPECT_NEAR(report.max_over_avg, 1.5, 1e-12);
  EXPECT_NEAR(report.gini, 0.25, 1e-12);
}

TEST(BalanceReport, ZeroShareYieldsInfiniteRatio) {
  const auto report = summarize_shares({0.0, 1.0});
  EXPECT_TRUE(std::isinf(report.max_over_min));
}

TEST(BalanceReport, Validation) {
  EXPECT_THROW((void)summarize_shares({}), InvalidArgument);
  EXPECT_THROW((void)summarize_shares({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW((void)summarize_shares({-1.0, 2.0}), InvalidArgument);
}

TEST(BalanceReport, VnodeBalanceMatchesSigmaQv) {
  LocalDht dht(cfg(16, 8, 5));
  const auto snode = dht.add_snode();
  for (int i = 0; i < 50; ++i) dht.create_vnode(snode);
  const auto report = vnode_balance(dht);
  EXPECT_NEAR(report.sigma_rel, dht.sigma_qv(), 1e-12);
  EXPECT_GE(report.max_over_min, 1.0);
  EXPECT_GE(report.max_over_avg, 1.0);
  EXPECT_GE(report.gini, 0.0);
  EXPECT_LT(report.gini, 0.5);
}

TEST(SnodeQuotas, SumToOneAndFollowHosting) {
  GlobalDht dht(cfg(8, 1, 7));
  const auto s0 = dht.add_snode();
  const auto s1 = dht.add_snode();
  for (int i = 0; i < 3; ++i) dht.create_vnode(s0);
  dht.create_vnode(s1);
  const auto shares = snode_quotas(dht);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_NEAR(shares[0] + shares[1], 1.0, 1e-12);
  EXPECT_GT(shares[0], shares[1]);  // 3 vnodes vs 1
}

TEST(CapacityWeightedBalance, ProportionalDeploymentScoresWell) {
  LocalDht dht(cfg(16, 16, 9));
  const auto small = dht.add_snode(1.0);
  const auto big = dht.add_snode(3.0);
  for (int i = 0; i < 8; ++i) dht.create_vnode(small);
  for (int i = 0; i < 24; ++i) dht.create_vnode(big);
  const auto report = capacity_weighted_balance(dht);
  EXPECT_LT(report.sigma_rel, 0.15);
}

TEST(LorenzCurve, EndsAtOneAndIsMonotone) {
  const auto curve = lorenz_curve({5.0, 1.0, 3.0, 1.0}, 8);
  ASSERT_EQ(curve.size(), 8u);
  EXPECT_NEAR(curve.back(), 1.0, 1e-12);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i] + 1e-12, curve[i - 1]);
  }
  // Equality: the curve is the diagonal.
  const auto diag = lorenz_curve({1.0, 1.0, 1.0, 1.0}, 4);
  EXPECT_NEAR(diag[0], 0.25, 1e-12);
  EXPECT_NEAR(diag[2], 0.75, 1e-12);
}

TEST(LorenzCurve, Validation) {
  EXPECT_THROW((void)lorenz_curve({}, 4), InvalidArgument);
  EXPECT_THROW((void)lorenz_curve({1.0}, 1), InvalidArgument);
}

}  // namespace
}  // namespace cobalt::dht
