// Tests for the partial-knowledge snode router.

#include "dht/router.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cobalt::dht {
namespace {

Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// A DHT with `snodes` hosts and `vnodes` vnodes placed round-robin.
LocalDht make_dht(std::size_t snodes, std::size_t vnodes,
                  std::uint64_t seed) {
  LocalDht dht(cfg(8, 4, seed));
  for (std::size_t s = 0; s < snodes; ++s) dht.add_snode();
  for (std::size_t v = 0; v < vnodes; ++v) {
    dht.create_vnode(static_cast<SNodeId>(v % snodes));
  }
  return dht;
}

TEST(SnodeRouter, AlwaysReturnsTheTrueOwner) {
  const LocalDht dht = make_dht(8, 64, 1);
  SnodeRouter router(dht, 0);
  Xoshiro256 rng(9);
  for (int probe = 0; probe < 2000; ++probe) {
    const HashIndex r = rng.next();
    EXPECT_EQ(router.lookup(r).owner, dht.lookup(r).owner);
  }
}

TEST(SnodeRouter, SingleSnodeResolvesEverythingLocally) {
  const LocalDht dht = make_dht(1, 20, 2);
  SnodeRouter router(dht, 0);
  Xoshiro256 rng(3);
  for (int probe = 0; probe < 500; ++probe) {
    const auto result = router.lookup(rng.next());
    EXPECT_EQ(result.hops, 0u);
    EXPECT_EQ(result.source, SnodeRouter::Source::kLocalKnowledge);
  }
  EXPECT_EQ(router.stats().local, 500u);
  EXPECT_DOUBLE_EQ(router.stats().mean_hops(), 0.0);
}

TEST(SnodeRouter, RepeatLookupsHitTheCache) {
  const LocalDht dht = make_dht(16, 128, 3);
  SnodeRouter router(dht, 0);
  // Find an index resolved remotely, then repeat it.
  Xoshiro256 rng(4);
  HashIndex remote_index = 0;
  for (int probe = 0; probe < 5000; ++probe) {
    const HashIndex r = rng.next();
    if (router.lookup(r).source == SnodeRouter::Source::kRemote) {
      remote_index = r;
      break;
    }
  }
  const auto again = router.lookup(remote_index);
  EXPECT_EQ(again.source, SnodeRouter::Source::kCacheFresh);
  EXPECT_EQ(again.hops, 1u);
}

TEST(SnodeRouter, RebalanceInvalidatesCacheEntries) {
  LocalDht dht = make_dht(16, 64, 5);
  SnodeRouter router(dht, 0);
  // Warm the cache over the whole range.
  Xoshiro256 rng(6);
  std::vector<HashIndex> probes;
  for (int i = 0; i < 3000; ++i) {
    const HashIndex r = rng.next();
    probes.push_back(r);
    router.lookup(r);
  }
  // Churn: enough creations to split partitions and hand many over.
  for (int i = 0; i < 64; ++i) {
    dht.create_vnode(static_cast<SNodeId>(i % 16));
  }
  const auto before = router.stats();
  for (const HashIndex r : probes) router.lookup(r);
  const auto after = router.stats();
  EXPECT_GT(after.cache_stale, before.cache_stale);
  // Correctness never suffers - only hop counts do.
  for (const HashIndex r : probes) {
    ASSERT_EQ(router.lookup(r).owner, dht.lookup(r).owner);
  }
}

TEST(SnodeRouter, FlushDropsTheCache) {
  const LocalDht dht = make_dht(8, 64, 7);
  SnodeRouter router(dht, 0);
  Xoshiro256 rng(8);
  for (int i = 0; i < 500; ++i) router.lookup(rng.next());
  EXPECT_GT(router.cache_size(), 0u);
  router.flush_cache();
  EXPECT_EQ(router.cache_size(), 0u);
}

TEST(SnodeRouter, CacheRespectsCapacity) {
  const LocalDht dht = make_dht(16, 256, 9);
  SnodeRouter router(dht, 0, /*cache_capacity=*/16);
  Xoshiro256 rng(10);
  for (int i = 0; i < 5000; ++i) router.lookup(rng.next());
  EXPECT_LE(router.cache_size(), 17u);  // capacity + in-flight insert
}

TEST(SnodeRouter, StatsAddUp) {
  const LocalDht dht = make_dht(8, 64, 11);
  SnodeRouter router(dht, 3);
  Xoshiro256 rng(12);
  for (int i = 0; i < 1000; ++i) router.lookup(rng.next());
  const auto& stats = router.stats();
  EXPECT_EQ(stats.lookups, 1000u);
  EXPECT_EQ(stats.local + stats.cache_fresh + stats.cache_stale +
                stats.remote,
            1000u);
  EXPECT_EQ(stats.hops,
            stats.cache_fresh + 2 * (stats.cache_stale + stats.remote));
}

TEST(SnodeRouter, ValidatesConstruction) {
  const LocalDht dht = make_dht(4, 8, 13);
  EXPECT_THROW(SnodeRouter(dht, 99), InvalidArgument);
  EXPECT_THROW(SnodeRouter(dht, 0, 0), InvalidArgument);
}

TEST(SnodeRouter, MoreSnodesMeansLessLocalKnowledge) {
  // With many snodes, a single snode's groups cover a small share of
  // the ring, so the local-resolution fraction drops.
  const LocalDht small = make_dht(2, 64, 14);
  const LocalDht large = make_dht(32, 64, 14);
  SnodeRouter small_router(small, 0);
  SnodeRouter large_router(large, 0);
  Xoshiro256 rng(15);
  for (int i = 0; i < 2000; ++i) {
    const HashIndex r = rng.next();
    small_router.lookup(r);
    large_router.lookup(r);
  }
  const double small_local =
      static_cast<double>(small_router.stats().local) / 2000.0;
  const double large_local =
      static_cast<double>(large_router.stats().local) / 2000.0;
  EXPECT_GT(small_local, large_local);
}

}  // namespace
}  // namespace cobalt::dht
