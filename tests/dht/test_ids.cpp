// Unit tests for the group identifier scheme (section 3.7.1, figure 3)
// and canonical vnode names.

#include "dht/ids.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cobalt::dht {
namespace {

TEST(CanonicalName, FollowsSnodeDotVnodeFormat) {
  EXPECT_EQ(canonical_name(3, 17), "3.17");
  EXPECT_EQ(canonical_name(0, 0), "0.0");
}

TEST(GroupId, RootIsGroupZero) {
  const GroupId root = GroupId::root();
  EXPECT_EQ(root.value(), 0u);
  EXPECT_EQ(root.depth(), 0u);
  EXPECT_EQ(root.to_string(), "0");
}

TEST(GroupId, FirstSplitMatchesFigure3) {
  // "when the first group becomes full, it splits in groups 0 and 1"
  const auto [g0, g1] = GroupId::root().split();
  EXPECT_EQ(g0.to_string(), "0");
  EXPECT_EQ(g1.to_string(), "1");
  EXPECT_EQ(g0.value(), 0u);
  EXPECT_EQ(g1.value(), 1u);
}

TEST(GroupId, SecondGenerationMatchesFigure3) {
  // Figure 3: 0->(00,10)=(0,2), 1->(01,11)=(1,3); next row
  // 00->(000,100)=(0,4), 01->(001,101)=(1,5), etc.
  const auto [g0, g1] = GroupId::root().split();
  const auto [g00, g10] = g0.split();
  EXPECT_EQ(g00.value(), 0u);
  EXPECT_EQ(g10.value(), 2u);
  EXPECT_EQ(g00.to_string(), "00");
  EXPECT_EQ(g10.to_string(), "10");
  const auto [g01, g11] = g1.split();
  EXPECT_EQ(g01.value(), 1u);
  EXPECT_EQ(g11.value(), 3u);
  const auto [g001, g101] = g01.split();
  EXPECT_EQ(g001.value(), 1u);
  EXPECT_EQ(g101.value(), 5u);
  EXPECT_EQ(g101.to_string(), "101");
}

TEST(GroupId, SplitPrefixesWrittenBinary) {
  // Splitting prefixes the *written* identifier with 0 or 1.
  const GroupId g = GroupId::from_bits(0b01, 2);  // written "01"... value 1
  const auto [c0, c1] = g.split();
  EXPECT_EQ(c0.to_string(), "001");
  EXPECT_EQ(c1.to_string(), "101");
  EXPECT_EQ(c0.value(), 1u);
  EXPECT_EQ(c1.value(), 5u);
}

TEST(GroupId, SiblingAndParentInvertSplit) {
  const GroupId g = GroupId::from_bits(0b0101, 4);
  const auto [c0, c1] = g.split();
  EXPECT_EQ(c0.sibling(), c1);
  EXPECT_EQ(c1.sibling(), c0);
  EXPECT_EQ(c0.parent(), g);
  EXPECT_EQ(c1.parent(), g);
}

TEST(GroupId, RootHasNoParentOrSibling) {
  EXPECT_THROW((void)GroupId::root().parent(), InvalidArgument);
  EXPECT_THROW((void)GroupId::root().sibling(), InvalidArgument);
}

TEST(GroupId, FromBitsValidates) {
  EXPECT_THROW((void)GroupId::from_bits(4, 2), InvalidArgument);  // needs 3 digits
  EXPECT_THROW((void)GroupId::from_bits(1, 0), InvalidArgument);  // depth-0 root is 0
  EXPECT_THROW((void)GroupId::from_bits(0, 64), InvalidArgument);
  EXPECT_NO_THROW(GroupId::from_bits(3, 2));
  EXPECT_NO_THROW(GroupId::from_bits(0, 0));
}

// Property: splitting any full binary tree of groups yields pairwise
// distinct identifiers at every generation ("unique global identifier,
// in an autonomous, decentralized way").
TEST(GroupId, FullTreeGeneratesUniqueIdentifiers) {
  std::vector<GroupId> generation{GroupId::root()};
  for (int depth = 0; depth < 6; ++depth) {
    std::vector<GroupId> next;
    for (const GroupId& g : generation) {
      const auto [a, b] = g.split();
      next.push_back(a);
      next.push_back(b);
    }
    std::set<std::uint64_t> values;
    for (const GroupId& g : next) values.insert(g.value());
    EXPECT_EQ(values.size(), next.size()) << "collision at depth " << depth;
    // Values at depth d are exactly 0 .. 2^d - 1 (figure 3's base-10 row).
    EXPECT_EQ(*values.begin(), 0u);
    EXPECT_EQ(*values.rbegin(), next.size() - 1);
    generation = std::move(next);
  }
}

// Property: uniqueness also holds across *unbalanced* trees, because an
// identifier encodes its whole split path.
TEST(GroupId, UnbalancedTreeKeepsUniqueness) {
  std::vector<GroupId> leaves{GroupId::root()};
  // Repeatedly split only the first leaf, emulating maximal asynchrony.
  for (int i = 0; i < 10; ++i) {
    const GroupId g = leaves.front();
    leaves.erase(leaves.begin());
    const auto [a, b] = g.split();
    leaves.push_back(a);
    leaves.push_back(b);
  }
  std::set<std::pair<std::uint64_t, unsigned>> keys;
  for (const GroupId& g : leaves) keys.insert({g.value(), g.depth()});
  EXPECT_EQ(keys.size(), leaves.size());
}

}  // namespace
}  // namespace cobalt::dht
