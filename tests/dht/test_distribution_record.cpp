// Unit tests for DistributionRecord (the GPDR/LPDR structure).

#include "dht/distribution_record.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace cobalt::dht {
namespace {

TEST(DistributionRecord, TracksCountsAndTotal) {
  DistributionRecord r;
  r.add_vnode(0, 4);
  r.add_vnode(1, 0);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.total(), 4u);
  EXPECT_EQ(r.count_of(0), 4u);
  EXPECT_EQ(r.count_of(1), 0u);
  r.increment(1);
  r.decrement(0);
  EXPECT_EQ(r.total(), 4u);
  EXPECT_EQ(r.count_of(0), 3u);
  EXPECT_EQ(r.count_of(1), 1u);
}

TEST(DistributionRecord, RejectsDuplicatesAndUnknownVnodes) {
  DistributionRecord r;
  r.add_vnode(7, 1);
  EXPECT_THROW((void)r.add_vnode(7, 0), InvalidArgument);
  EXPECT_THROW((void)r.count_of(8), InvalidArgument);
  EXPECT_THROW((void)r.increment(8), InvalidArgument);
  EXPECT_THROW((void)r.decrement(8), InvalidArgument);
}

TEST(DistributionRecord, DecrementBelowZeroThrows) {
  DistributionRecord r;
  r.add_vnode(0, 0);
  EXPECT_THROW((void)r.decrement(0), InvalidArgument);
}

TEST(DistributionRecord, RemoveRequiresDrainedVnode) {
  DistributionRecord r;
  r.add_vnode(0, 2);
  EXPECT_THROW((void)r.remove_vnode(0), InvalidArgument);
  r.decrement(0);
  r.decrement(0);
  r.remove_vnode(0);
  EXPECT_EQ(r.size(), 0u);
}

TEST(DistributionRecord, ArgmaxFollowsMutations) {
  DistributionRecord r;
  r.add_vnode(0, 5);
  r.add_vnode(1, 9);
  r.add_vnode(2, 7);
  EXPECT_EQ(r.argmax(), 1u);
  // Drop vnode 1 below vnode 2.
  r.decrement(1);
  r.decrement(1);
  r.decrement(1);
  EXPECT_EQ(r.argmax(), 2u);
  // Raise vnode 0 above everything.
  for (int i = 0; i < 4; ++i) r.increment(0);
  EXPECT_EQ(r.argmax(), 0u);
}

TEST(DistributionRecord, ArgmaxSkipsRemovedVnodes) {
  DistributionRecord r;
  r.add_vnode(0, 5);
  r.add_vnode(1, 3);
  while (r.count_of(0) > 0) r.decrement(0);
  r.remove_vnode(0);
  EXPECT_EQ(r.argmax(), 1u);
}

TEST(DistributionRecord, ArgminAndExclusion) {
  DistributionRecord r;
  r.add_vnode(0, 5);
  r.add_vnode(1, 2);
  r.add_vnode(2, 8);
  EXPECT_EQ(r.argmin(), 1u);
  EXPECT_EQ(r.argmin_excluding(1), 0u);
  DistributionRecord single;
  single.add_vnode(4, 1);
  EXPECT_THROW((void)single.argmin_excluding(4), InvalidArgument);
}

TEST(DistributionRecord, DoubleAllAndHalveAllScaleCounts) {
  DistributionRecord r;
  r.add_vnode(0, 3);
  r.add_vnode(1, 5);
  r.double_all();
  EXPECT_EQ(r.count_of(0), 6u);
  EXPECT_EQ(r.count_of(1), 10u);
  EXPECT_EQ(r.total(), 16u);
  r.halve_all();
  EXPECT_EQ(r.count_of(0), 3u);
  EXPECT_EQ(r.total(), 8u);
}

TEST(DistributionRecord, HalveAllRejectsOddCounts) {
  DistributionRecord r;
  r.add_vnode(0, 3);
  EXPECT_THROW((void)r.halve_all(), InvalidArgument);
}

TEST(DistributionRecord, SetCountAdjustsTotalAndArgmax) {
  DistributionRecord r;
  r.add_vnode(0, 1);
  r.add_vnode(1, 2);
  r.set_count(0, 10);
  EXPECT_EQ(r.total(), 12u);
  EXPECT_EQ(r.argmax(), 0u);
}

TEST(DistributionRecord, SortedByCountDescIsStableOnTies) {
  DistributionRecord r;
  r.add_vnode(3, 4);
  r.add_vnode(1, 4);
  r.add_vnode(2, 9);
  const auto sorted = r.sorted_by_count_desc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 2u);
  EXPECT_EQ(sorted[1].first, 1u);  // tie broken by vnode id
  EXPECT_EQ(sorted[2].first, 3u);
}

TEST(DistributionRecord, RelativeStddevMatchesClosedForm) {
  DistributionRecord r;
  // Counts {2, 4}: mean 3, population sigma 1, relative 1/3.
  r.add_vnode(0, 2);
  r.add_vnode(1, 4);
  EXPECT_NEAR(r.relative_stddev_counts(), 1.0 / 3.0, 1e-12);
  // Uniform counts: exactly zero.
  DistributionRecord u;
  u.add_vnode(0, 7);
  u.add_vnode(1, 7);
  u.add_vnode(2, 7);
  EXPECT_DOUBLE_EQ(u.relative_stddev_counts(), 0.0);
}

TEST(DistributionRecord, EmptyRecordQueriesThrow) {
  DistributionRecord r;
  EXPECT_THROW((void)r.argmax(), InvalidArgument);
  EXPECT_THROW((void)r.argmin(), InvalidArgument);
  EXPECT_THROW((void)r.relative_stddev_counts(), InvalidArgument);
}

// Stress property: argmax agrees with a naive scan through thousands of
// random mutations (exercises the lazy-heap compaction path).
TEST(DistributionRecord, ArgmaxAgreesWithNaiveScanUnderChurn) {
  DistributionRecord r;
  constexpr int kVnodes = 40;
  for (VNodeId v = 0; v < kVnodes; ++v) r.add_vnode(v, 8);
  Xoshiro256 rng(42);
  for (int step = 0; step < 5000; ++step) {
    const auto v = static_cast<VNodeId>(rng.next_below(kVnodes));
    if (rng.next_bool() && r.count_of(v) > 0) r.decrement(v);
    else r.increment(v);

    const VNodeId got = r.argmax();
    std::uint32_t best = 0;
    for (VNodeId u = 0; u < kVnodes; ++u)
      best = std::max(best, r.count_of(u));
    EXPECT_EQ(r.count_of(got), best) << "step " << step;
  }
}

}  // namespace
}  // namespace cobalt::dht
