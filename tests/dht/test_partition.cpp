// Unit tests for dht::Partition: dyadic-cell geometry, splits, buddies,
// containment and exact quotas.

#include "dht/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/dyadic.hpp"

namespace cobalt::dht {
namespace {

TEST(Partition, WholeRangeCoversEverything) {
  const Partition whole = Partition::whole();
  EXPECT_EQ(whole.level(), 0u);
  EXPECT_EQ(whole.begin(), 0u);
  EXPECT_EQ(whole.last(), HashSpace::kMaxIndex);
  EXPECT_TRUE(whole.contains(0));
  EXPECT_TRUE(whole.contains(HashSpace::kMaxIndex));
  EXPECT_EQ(whole.quota(), Dyadic::one());
}

TEST(Partition, SplitProducesAdjacentHalves) {
  const auto [low, high] = Partition::whole().split();
  EXPECT_EQ(low.level(), 1u);
  EXPECT_EQ(high.level(), 1u);
  EXPECT_EQ(low.begin(), 0u);
  EXPECT_EQ(low.last() + 1, high.begin());
  EXPECT_EQ(high.last(), HashSpace::kMaxIndex);
  EXPECT_EQ(low.quota() + high.quota(), Dyadic::one());
}

TEST(Partition, SplitHalvesQuotaExactly) {
  Partition p = Partition::whole();
  Dyadic expected = Dyadic::one();
  for (int i = 0; i < 20; ++i) {
    p = p.split().first;
    expected = Dyadic::one_over_pow2(static_cast<unsigned>(i + 1));
    EXPECT_EQ(p.quota(), expected) << "level " << i + 1;
  }
}

TEST(Partition, ParentInvertsSplit) {
  const Partition p = Partition::at(0b1011, 4);
  const auto [low, high] = p.split();
  EXPECT_EQ(low.parent(), p);
  EXPECT_EQ(high.parent(), p);
}

TEST(Partition, BuddyIsTheOtherHalfOfTheParent) {
  const Partition p = Partition::at(6, 3);
  EXPECT_EQ(p.buddy(), Partition::at(7, 3));
  EXPECT_EQ(p.buddy().buddy(), p);
  EXPECT_EQ(p.buddy().parent(), p.parent());
}

TEST(Partition, ContainsMatchesBounds) {
  const Partition p = Partition::at(2, 2);  // third quarter of the range
  EXPECT_FALSE(p.contains(p.begin() - 1));
  EXPECT_TRUE(p.contains(p.begin()));
  EXPECT_TRUE(p.contains(p.last()));
  EXPECT_FALSE(p.contains(p.last() + 1));
}

TEST(Partition, ContainingFindsTheRightCell) {
  for (unsigned level : {1u, 3u, 7u, 16u}) {
    const Partition p = Partition::at((1u << level) - 1, level);  // last cell
    EXPECT_EQ(Partition::containing(p.begin(), level), p);
    EXPECT_EQ(Partition::containing(p.last(), level), p);
    EXPECT_EQ(Partition::containing(HashSpace::kMaxIndex, level), p);
  }
}

TEST(Partition, CoversIsReflexiveAndHierarchical) {
  const Partition coarse = Partition::at(1, 1);
  const Partition fine = Partition::at(0b1101, 4);
  EXPECT_TRUE(coarse.covers(coarse));
  EXPECT_TRUE(coarse.covers(fine));       // 1101 starts with 1
  EXPECT_FALSE(fine.covers(coarse));      // finer cannot cover coarser
  EXPECT_FALSE(Partition::at(0, 1).covers(fine));
}

TEST(Partition, RejectsOutOfRangePrefix) {
  EXPECT_THROW((void)Partition::at(4, 2), InvalidArgument);
  EXPECT_THROW((void)Partition::at(1, 0), InvalidArgument);
}

TEST(Partition, RejectsSplittingSingleIndexCells) {
  const Partition leaf = Partition::at(0, HashSpace::kMaxSplitLevel);
  EXPECT_THROW((void)leaf.split(), InvalidArgument);
}

TEST(Partition, WholeHasNoParentOrBuddy) {
  EXPECT_THROW((void)Partition::whole().parent(), InvalidArgument);
  EXPECT_THROW((void)Partition::whole().buddy(), InvalidArgument);
}

TEST(Partition, KeyIsCollisionFreeAtDeepSplitlevels) {
  // Regression for the retired shard packing (prefix << 7) | level,
  // which shifted the prefix out of the word once level exceeded 57:
  // at level 58, prefix 2^57 packed identically to prefix 0.
  const auto old_packing = [](const Partition& p) {
    return (p.prefix() << 7) | p.level();
  };
  const Partition deep_hi = Partition::at(std::uint64_t{1} << 57, 58);
  const Partition deep_lo = Partition::at(0, 58);
  EXPECT_EQ(old_packing(deep_hi), old_packing(deep_lo));  // the bug
  EXPECT_NE(deep_hi.key(), deep_lo.key());                // the fix

  // key() is injective across levels too (same prefix, different level).
  EXPECT_NE(Partition::at(0, 1).key(), Partition::at(0, 2).key());
  EXPECT_NE(Partition::at(3, 5).key(), Partition::at(3, 6).key());

  // Exhaustive uniqueness over a mixed-level sample.
  std::set<cobalt::uint128> seen;
  for (unsigned level = 0; level <= 10; ++level) {
    for (std::uint64_t prefix = 0; prefix < (std::uint64_t{1} << level);
         prefix += (level < 5 ? 1 : 37)) {
      EXPECT_TRUE(seen.insert(Partition::at(prefix, level).key()).second)
          << "collision at level " << level << " prefix " << prefix;
    }
  }
  // The extremes of the representable space stay distinct.
  EXPECT_NE(Partition::whole().key(),
            Partition::at(0, HashSpace::kMaxSplitLevel).key());
  EXPECT_NE(Partition::at(~std::uint64_t{0}, 64).key(),
            Partition::at(0, 64).key());
}

TEST(Partition, OrderingFollowsRangePosition) {
  const Partition a = Partition::at(0, 2);
  const Partition b = Partition::at(1, 2);
  EXPECT_LT(a, b);
  // Same start, coarser level orders first.
  EXPECT_LT(Partition::at(0, 1), Partition::at(0, 2));
}

// Property sweep: at each level, the cells exactly tile the range.
class PartitionTiling : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionTiling, CellsTileTheRange) {
  const unsigned level = GetParam();
  const std::uint64_t cells = std::uint64_t{1} << level;
  HashIndex expected_begin = 0;
  Dyadic total;
  for (std::uint64_t prefix = 0; prefix < cells; ++prefix) {
    const Partition p = Partition::at(prefix, level);
    EXPECT_EQ(p.begin(), expected_begin);
    total += p.quota();
    if (prefix + 1 < cells) expected_begin = p.last() + 1;
    else EXPECT_EQ(p.last(), HashSpace::kMaxIndex);
  }
  EXPECT_EQ(total, Dyadic::one());
}

INSTANTIATE_TEST_SUITE_P(Levels, PartitionTiling,
                         ::testing::Values(0u, 1u, 2u, 5u, 10u));

}  // namespace
}  // namespace cobalt::dht
