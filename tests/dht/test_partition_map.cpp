// Unit tests for PartitionMap: routing lookups, splits, merges, tiling.

#include "dht/partition_map.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace cobalt::dht {
namespace {

TEST(PartitionMap, LookupOnWholeRange) {
  PartitionMap map;
  map.insert(Partition::whole(), 3);
  const auto hit = map.lookup(12345);
  EXPECT_EQ(hit.owner, 3u);
  EXPECT_EQ(hit.partition, Partition::whole());
  EXPECT_TRUE(map.tiles_whole_range());
}

TEST(PartitionMap, SplitKeepsOwnerAndTiling) {
  PartitionMap map;
  map.insert(Partition::whole(), 1);
  map.split(Partition::whole());
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.tiles_whole_range());
  EXPECT_EQ(map.lookup(0).owner, 1u);
  EXPECT_EQ(map.lookup(HashSpace::kMaxIndex).owner, 1u);
  const auto [low, high] = Partition::whole().split();
  EXPECT_EQ(map.lookup(0).partition, low);
  EXPECT_EQ(map.lookup(HashSpace::kMaxIndex).partition, high);
}

TEST(PartitionMap, SetOwnerReroutes) {
  PartitionMap map;
  map.insert(Partition::whole(), 1);
  map.split(Partition::whole());
  const auto [low, high] = Partition::whole().split();
  map.set_owner(high, 9);
  EXPECT_EQ(map.lookup(0).owner, 1u);
  EXPECT_EQ(map.lookup(HashSpace::kMaxIndex).owner, 9u);
}

TEST(PartitionMap, MergeCollapsesBuddies) {
  PartitionMap map;
  map.insert(Partition::whole(), 1);
  map.split(Partition::whole());
  map.merge(Partition::whole(), 2);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.lookup(42).owner, 2u);
  EXPECT_TRUE(map.tiles_whole_range());
}

TEST(PartitionMap, MergeRequiresBothHalvesLive) {
  PartitionMap map;
  map.insert(Partition::whole(), 1);
  map.split(Partition::whole());
  const auto [low, high] = Partition::whole().split();
  map.split(low);  // low is now two quarters; parent merge must fail
  EXPECT_THROW((void)map.merge(Partition::whole(), 1), InvalidArgument);
}

TEST(PartitionMap, EraseAndExactMatchChecks) {
  PartitionMap map;
  const Partition p = Partition::at(1, 1);
  map.insert(Partition::at(0, 1), 0);
  map.insert(p, 1);
  // Wrong level at the same start is rejected.
  EXPECT_THROW((void)map.erase(Partition::at(2, 2)), InvalidArgument);
  map.erase(p);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_FALSE(map.tiles_whole_range());
}

TEST(PartitionMap, DuplicateStartRejected) {
  PartitionMap map;
  map.insert(Partition::at(0, 1), 0);
  EXPECT_THROW((void)map.insert(Partition::at(0, 2), 1), InvalidArgument);
}

TEST(PartitionMap, OwnerOfExactPartition) {
  PartitionMap map;
  map.insert(Partition::at(0, 1), 5);
  map.insert(Partition::at(1, 1), 6);
  EXPECT_EQ(map.owner_of(Partition::at(1, 1)), 6u);
  EXPECT_THROW((void)map.owner_of(Partition::at(1, 2)), InvalidArgument);
}

TEST(PartitionMap, TilingDetectsHoles) {
  PartitionMap map;
  map.insert(Partition::at(0, 2), 0);
  map.insert(Partition::at(1, 2), 0);
  map.insert(Partition::at(3, 2), 0);  // quarter 2 missing
  EXPECT_FALSE(map.tiles_whole_range());
  map.insert(Partition::at(2, 2), 0);
  EXPECT_TRUE(map.tiles_whole_range());
}

TEST(PartitionMap, TilingDetectsTruncatedTail) {
  PartitionMap map;
  map.insert(Partition::at(0, 1), 0);
  map.insert(Partition::at(2, 2), 0);  // third quarter, but last missing
  EXPECT_FALSE(map.tiles_whole_range());
}

TEST(PartitionMap, ForEachVisitsInRangeOrder) {
  PartitionMap map;
  map.insert(Partition::at(1, 1), 1);
  map.insert(Partition::at(0, 2), 2);
  map.insert(Partition::at(1, 2), 3);
  std::vector<VNodeId> owners;
  map.for_each([&](const Partition&, VNodeId o) { owners.push_back(o); });
  EXPECT_EQ(owners, (std::vector<VNodeId>{2, 3, 1}));
}

// Property: after a randomized cascade of splits, lookups are always
// consistent with containment and the map still tiles the range.
TEST(PartitionMap, RandomSplitCascadeKeepsConsistency) {
  PartitionMap map;
  map.insert(Partition::whole(), 0);
  Xoshiro256 rng(7);
  std::vector<Partition> live{Partition::whole()};
  for (int step = 0; step < 300; ++step) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.next_below(live.size()));
    const Partition target = live[pick];
    if (target.level() >= 40) continue;
    map.split(target);
    const auto [low, high] = target.split();
    live[pick] = low;
    live.push_back(high);
    map.set_owner(high, static_cast<VNodeId>(step + 1));
  }
  EXPECT_TRUE(map.tiles_whole_range());
  EXPECT_EQ(map.size(), live.size());
  for (int probe = 0; probe < 2000; ++probe) {
    const HashIndex r = rng.next();
    const auto hit = map.lookup(r);
    EXPECT_TRUE(hit.partition.contains(r));
    EXPECT_EQ(map.owner_of(hit.partition), hit.owner);
  }
}

}  // namespace
}  // namespace cobalt::dht
