// Parameterized tests over the partition-pick policy: the paper leaves
// "choose a victim partition" open (section 2.5, step 4a), so the
// balancement *quality* must be identical across policies - only the
// identity of the moved partitions may differ.

#include <gtest/gtest.h>

#include "dht/global_dht.hpp"
#include "dht/invariants.hpp"
#include "dht/local_dht.hpp"

namespace cobalt::dht {
namespace {

Config cfg(PartitionPick pick, std::uint64_t seed) {
  Config c;
  c.pmin = 8;
  c.vmin = 8;
  c.pick = pick;
  c.seed = seed;
  return c;
}

class PickPolicy : public ::testing::TestWithParam<PartitionPick> {};

TEST_P(PickPolicy, GlobalInvariantsHold) {
  GlobalDht dht(cfg(GetParam(), 3));
  const auto snode = dht.add_snode();
  for (int i = 0; i < 100; ++i) {
    dht.create_vnode(snode);
  }
  check_invariants(dht);
}

TEST_P(PickPolicy, LocalInvariantsHoldThroughChurn) {
  LocalDht dht(cfg(GetParam(), 5));
  const auto snode = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 80; ++i) ids.push_back(dht.create_vnode(snode));
  for (int i = 0; i < 10; ++i) {
    try {
      dht.remove_vnode(ids[static_cast<std::size_t>(i * 3)]);
    } catch (const UnsupportedTopology&) {
      // acceptable refusal; state must stay intact (checked below)
    }
    check_invariants(dht, /*creation_only=*/false);
  }
}

TEST_P(PickPolicy, GlobalCountsArePolicyIndependent) {
  // The GPDR evolution depends only on counts, never on which concrete
  // partition moves: all policies produce identical count multisets.
  GlobalDht dht(cfg(GetParam(), 7));
  GlobalDht reference(cfg(PartitionPick::kLast, 7));
  const auto s1 = dht.add_snode();
  const auto s2 = reference.add_snode();
  for (int i = 0; i < 60; ++i) {
    dht.create_vnode(s1);
    reference.create_vnode(s2);
  }
  for (const VNodeId id : dht.live_vnodes()) {
    EXPECT_EQ(dht.gpdr().count_of(id), reference.gpdr().count_of(id));
  }
  EXPECT_DOUBLE_EQ(dht.sigma_qv(), reference.sigma_qv());
}

INSTANTIATE_TEST_SUITE_P(Policies, PickPolicy,
                         ::testing::Values(PartitionPick::kLast,
                                           PartitionPick::kFirst,
                                           PartitionPick::kRandom));

TEST(PickPolicy, LocalLockstepThroughTheSingleGroupZone) {
  // While one group exists, the victim draw always resolves to group 0
  // whatever partition r hits, so kFirst and kLast evolve in lockstep
  // (neither consumes extra RNG words). After the first group split the
  // policies may legitimately diverge: which *partition* moved decides
  // which group a future r selects.
  LocalDht first(cfg(PartitionPick::kFirst, 11));
  LocalDht last(cfg(PartitionPick::kLast, 11));
  const auto s1 = first.add_snode();
  const auto s2 = last.add_snode();
  const int vmax_plus_one = 17;  // Vmin = 8
  for (int i = 0; i < vmax_plus_one; ++i) {
    first.create_vnode(s1);
    last.create_vnode(s2);
    ASSERT_DOUBLE_EQ(first.sigma_qv(), last.sigma_qv()) << "step " << i;
    ASSERT_EQ(first.group_count(), last.group_count());
  }
  // Beyond the zone: both stay valid, whatever their trajectories.
  for (int i = vmax_plus_one; i < 120; ++i) {
    first.create_vnode(s1);
    last.create_vnode(s2);
  }
  check_invariants(first);
  check_invariants(last);
}

}  // namespace
}  // namespace cobalt::dht
