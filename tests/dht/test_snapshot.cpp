// Tests for DHT checkpoint/restore.

#include "dht/snapshot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dht/invariants.hpp"

namespace cobalt::dht {
namespace {

Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

TEST(Snapshot, LocalRoundTripPreservesState) {
  LocalDht original(cfg(8, 4, 42));
  const auto s0 = original.add_snode(1.5);
  const auto s1 = original.add_snode(2.5);
  for (int i = 0; i < 50; ++i) {
    original.create_vnode(i % 2 == 0 ? s0 : s1);
  }

  std::stringstream stream;
  save_snapshot(original, stream);
  LocalDht restored = load_local_snapshot(stream);

  EXPECT_EQ(restored.vnode_count(), original.vnode_count());
  EXPECT_EQ(restored.snode_count(), original.snode_count());
  EXPECT_EQ(restored.group_count(), original.group_count());
  EXPECT_EQ(restored.group_slot_count(), original.group_slot_count());
  EXPECT_DOUBLE_EQ(restored.sigma_qv(), original.sigma_qv());
  EXPECT_DOUBLE_EQ(restored.snode(0).capacity, 1.5);
  EXPECT_EQ(restored.quotas(), original.quotas());
  for (const VNodeId v : original.live_vnodes()) {
    EXPECT_EQ(restored.exact_quota(v), original.exact_quota(v));
    EXPECT_EQ(restored.group_of(v), original.group_of(v));
  }
  check_invariants(restored);
}

TEST(Snapshot, RestoredDhtContinuesIdentically) {
  // The definitive property: growing the restored DHT produces the
  // exact same evolution as growing the original (RNG state included).
  LocalDht original(cfg(8, 8, 7));
  const auto snode = original.add_snode();
  for (int i = 0; i < 40; ++i) original.create_vnode(snode);

  std::stringstream stream;
  save_snapshot(original, stream);
  LocalDht restored = load_local_snapshot(stream);

  for (int i = 0; i < 60; ++i) {
    const VNodeId a = original.create_vnode(snode);
    const VNodeId b = restored.create_vnode(snode);
    ASSERT_EQ(a, b);
    ASSERT_EQ(original.group_of(a), restored.group_of(b)) << "step " << i;
    ASSERT_DOUBLE_EQ(original.sigma_qv(), restored.sigma_qv());
  }
  EXPECT_EQ(original.group_count(), restored.group_count());
}

TEST(Snapshot, GlobalRoundTripPreservesState) {
  GlobalDht original(cfg(16, 1, 99));
  const auto snode = original.add_snode();
  for (int i = 0; i < 23; ++i) original.create_vnode(snode);

  std::stringstream stream;
  save_snapshot(original, stream);
  GlobalDht restored = load_global_snapshot(stream);

  EXPECT_EQ(restored.vnode_count(), original.vnode_count());
  EXPECT_EQ(restored.splitlevel(), original.splitlevel());
  EXPECT_EQ(restored.gpdr().total(), original.gpdr().total());
  EXPECT_DOUBLE_EQ(restored.sigma_qv(), original.sigma_qv());
  check_invariants(restored);

  // Continue both: identical evolution.
  for (int i = 0; i < 10; ++i) {
    original.create_vnode(snode);
    restored.create_vnode(snode);
  }
  EXPECT_EQ(restored.quotas(), original.quotas());
}

TEST(Snapshot, SurvivesRemovedVnodes) {
  LocalDht original(cfg(8, 16, 3));
  const auto snode = original.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(original.create_vnode(snode));
  original.remove_vnode(ids[3]);
  original.remove_vnode(ids[7]);

  std::stringstream stream;
  save_snapshot(original, stream);
  LocalDht restored = load_local_snapshot(stream);
  EXPECT_EQ(restored.vnode_count(), 18u);
  EXPECT_FALSE(restored.vnode(ids[3]).alive);
  EXPECT_EQ(restored.quotas(), original.quotas());
}

TEST(Snapshot, RejectsGarbage) {
  std::stringstream garbage("not-a-snapshot 1\n");
  EXPECT_THROW((void)load_local_snapshot(garbage), InvalidArgument);

  std::stringstream wrong_kind;
  GlobalDht global(cfg(8, 1, 1));
  const auto snode = global.add_snode();
  global.create_vnode(snode);
  save_snapshot(global, wrong_kind);
  EXPECT_THROW((void)load_local_snapshot(wrong_kind), InvalidArgument);
}

TEST(Snapshot, RejectsTruncatedStream) {
  LocalDht dht(cfg(8, 4, 5));
  const auto snode = dht.add_snode();
  for (int i = 0; i < 10; ++i) dht.create_vnode(snode);
  std::stringstream stream;
  save_snapshot(dht, stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)load_local_snapshot(truncated), Error);
}

TEST(Snapshot, RejectsCorruptedCounts) {
  LocalDht dht(cfg(8, 4, 6));
  const auto snode = dht.add_snode();
  for (int i = 0; i < 10; ++i) dht.create_vnode(snode);
  std::stringstream stream;
  save_snapshot(dht, stream);
  std::string text = stream.str();
  // Flip one vnode's snode reference out of range.
  const auto pos = text.find("\nv 0 ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "\nv 9 ");
  std::stringstream corrupted(text);
  EXPECT_THROW((void)load_local_snapshot(corrupted), Error);
}

TEST(Snapshot, EmptyDhtRoundTrips) {
  LocalDht empty(cfg(8, 4, 7));
  empty.add_snode();
  std::stringstream stream;
  save_snapshot(empty, stream);
  LocalDht restored = load_local_snapshot(stream);
  EXPECT_EQ(restored.vnode_count(), 0u);
  EXPECT_EQ(restored.snode_count(), 1u);
}

}  // namespace
}  // namespace cobalt::dht
