// Randomized operation fuzzing: long interleaved sequences of vnode
// creations and removals with the full invariant checker run after
// every mutation. UnsupportedTopology is an acceptable (documented)
// refusal for local removals - but it must leave the DHT untouched.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dht/global_dht.hpp"
#include "dht/invariants.hpp"
#include "dht/local_dht.hpp"

namespace cobalt::dht {
namespace {

Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Picks a random live vnode.
template <typename DhtT>
VNodeId random_live(const DhtT& dht, Xoshiro256& rng) {
  const auto live = dht.live_vnodes();
  return live[static_cast<std::size_t>(rng.next_below(live.size()))];
}

class GlobalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalFuzz, MixedChurnKeepsInvariants) {
  const std::uint64_t seed = GetParam();
  GlobalDht dht(cfg(8, 1, seed));
  Xoshiro256 rng(seed * 31 + 7);
  const SNodeId s0 = dht.add_snode();
  const SNodeId s1 = dht.add_snode(2.0);
  dht.create_vnode(s0);

  for (int step = 0; step < 400; ++step) {
    const bool grow = dht.vnode_count() < 2 || rng.next_below(100) < 60;
    if (grow) {
      dht.create_vnode(rng.next_bool() ? s0 : s1);
    } else {
      dht.remove_vnode(random_live(dht, rng));
    }
    ASSERT_NO_THROW(check_invariants(dht, /*creation_only=*/false))
        << "seed " << seed << " step " << step;
  }
  EXPECT_GE(dht.vnode_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobalFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class LocalFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(LocalFuzz, MixedChurnKeepsInvariantsOrRefusesCleanly) {
  const auto [seed, vmin] = GetParam();
  LocalDht dht(cfg(8, vmin, seed));
  Xoshiro256 rng(seed * 131 + 3);
  const SNodeId s0 = dht.add_snode();
  const SNodeId s1 = dht.add_snode();
  dht.create_vnode(s0);

  int refused = 0;
  for (int step = 0; step < 400; ++step) {
    const bool grow = dht.vnode_count() < 2 || rng.next_below(100) < 65;
    if (grow) {
      dht.create_vnode(rng.next_bool() ? s0 : s1);
    } else {
      const VNodeId victim = random_live(dht, rng);
      const std::size_t vnodes_before = dht.vnode_count();
      try {
        dht.remove_vnode(victim);
      } catch (const UnsupportedTopology&) {
        // Documented refusal: the state must be exactly as before.
        ++refused;
        ASSERT_EQ(dht.vnode_count(), vnodes_before);
        ASSERT_TRUE(dht.vnode(victim).alive);
      }
    }
    ASSERT_NO_THROW(check_invariants(dht, /*creation_only=*/false))
        << "seed " << seed << " vmin " << vmin << " step " << step;
  }
  // The fuzz must exercise both outcomes over the seed set; individual
  // runs may legitimately see no refusals (tracked per-run only).
  EXPECT_GE(dht.vnode_count(), 1u);
  (void)refused;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByVmin, LocalFuzz,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(2u, 4u, 16u)));

TEST(LocalFuzz, RefusalsLeaveStateUsable) {
  // Drive until at least one UnsupportedTopology occurs, then keep
  // operating on the same instance to prove nothing was corrupted.
  LocalDht dht(cfg(4, 4, 777));
  Xoshiro256 rng(778);
  const SNodeId snode = dht.add_snode();
  for (int i = 0; i < 60; ++i) dht.create_vnode(snode);

  int refusals = 0;
  for (int step = 0; step < 200 && refusals == 0; ++step) {
    try {
      dht.remove_vnode(random_live(dht, rng));
    } catch (const UnsupportedTopology&) {
      ++refusals;
    }
    check_invariants(dht, /*creation_only=*/false);
  }
  // Keep growing afterwards regardless.
  for (int i = 0; i < 30; ++i) dht.create_vnode(snode);
  check_invariants(dht, /*creation_only=*/false);
  SUCCEED();
}

}  // namespace
}  // namespace cobalt::dht
