// Tests for the invariant checker itself: it must accept every state
// the balancers produce (covered throughout the suite) and *reject*
// specific corruptions. Corrupt states are constructed by editing
// snapshots - the only door into a DHT's internals - and asserting the
// loader's final validation trips on the right class of error.

#include "dht/invariants.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dht/snapshot.hpp"

namespace cobalt::dht {
namespace {

Config cfg(std::uint64_t pmin, std::uint64_t vmin, std::uint64_t seed) {
  Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// A healthy local DHT's snapshot text.
std::string healthy_snapshot(int vnodes = 24) {
  LocalDht dht(cfg(4, 4, 11));
  const auto snode = dht.add_snode();
  for (int i = 0; i < vnodes; ++i) dht.create_vnode(snode);
  std::stringstream stream;
  save_snapshot(dht, stream);
  return stream.str();
}

/// Replaces the first occurrence of `from` with `to`; asserts found.
std::string edit(std::string text, const std::string& from,
                 const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "edit target missing: " << from;
  text.replace(pos, from.size(), to);
  return text;
}

/// Fields of one "g ..." snapshot line plus its text range.
struct GroupLine {
  std::size_t begin = std::string::npos;  // index of 'g'
  std::size_t end = std::string::npos;    // index of the trailing '\n'
  std::uint64_t bits = 0;
  unsigned depth = 0;
  unsigned alive = 0;
  unsigned level = 0;
  std::size_t members = 0;
  std::string member_list;  // " m1 m2 ..."
};

/// Finds the first *live* group line (retired parent slots also appear
/// in snapshots and are invisible to the live-state checker).
GroupLine find_live_group_line(const std::string& text) {
  std::size_t pos = text.find("\ng ");
  while (pos != std::string::npos) {
    const std::size_t eol = text.find('\n', pos + 1);
    GroupLine line;
    line.begin = pos + 1;
    line.end = eol;
    std::istringstream parse(text.substr(line.begin, eol - line.begin));
    std::string g;
    parse >> g >> line.bits >> line.depth >> line.alive >> line.level >>
        line.members;
    std::getline(parse, line.member_list);
    if (line.alive == 1) return line;
    pos = text.find("\ng ", eol);
  }
  ADD_FAILURE() << "no live group line found";
  return {};
}

/// Rebuilds a group line from (possibly edited) fields.
std::string render_group_line(const GroupLine& line) {
  return "g " + std::to_string(line.bits) + " " +
         std::to_string(line.depth) + " " + std::to_string(line.alive) +
         " " + std::to_string(line.level) + " " +
         std::to_string(line.members) + line.member_list;
}

TEST(InvariantChecker, AcceptsHealthySnapshots) {
  std::stringstream stream(healthy_snapshot());
  EXPECT_NO_THROW((void)load_local_snapshot(stream));
}

TEST(InvariantChecker, DetectsVnodeInTwoGroups) {
  // Duplicate a vnode into a live group's member list: either the LPDR
  // build rejects the duplicate (same group) or L1 trips (two groups).
  const std::string text = healthy_snapshot();
  GroupLine line = find_live_group_line(text);
  line.members += 1;
  line.member_list += " 0";
  std::string corrupted = text;
  corrupted.replace(line.begin, line.end - line.begin,
                    render_group_line(line));
  std::stringstream stream(corrupted);
  EXPECT_THROW((void)load_local_snapshot(stream), Error);
}

TEST(InvariantChecker, DetectsBrokenTiling) {
  // Point one vnode's first partition at a different cell: two live
  // partitions collide / leave a hole.
  const std::string text = healthy_snapshot();
  // Partitions are "prefix:level" tokens; find the first "0:" token
  // and shift its prefix.
  const auto pos = text.find(" 0:");
  ASSERT_NE(pos, std::string::npos);
  const std::string corrupted = edit(text, " 0:", " 1:");
  std::stringstream stream(corrupted);
  EXPECT_THROW((void)load_local_snapshot(stream), Error);
}

TEST(InvariantChecker, DetectsWrongSplitlevelInGroup) {
  // Bump a live group's recorded splitlevel: G3' (uniform level within
  // the group) breaks.
  const std::string text = healthy_snapshot();
  GroupLine line = find_live_group_line(text);
  line.level += 1;
  std::string corrupted = text;
  corrupted.replace(line.begin, line.end - line.begin,
                    render_group_line(line));
  std::stringstream stream(corrupted);
  EXPECT_THROW((void)load_local_snapshot(stream), Error);
}

TEST(InvariantChecker, GlobalDetectsWrongSplitlevel) {
  GlobalDht dht(cfg(8, 1, 5));
  const auto snode = dht.add_snode();
  for (int i = 0; i < 9; ++i) dht.create_vnode(snode);
  std::stringstream stream;
  save_snapshot(dht, stream);
  const std::string corrupted =
      edit(stream.str(), "splitlevel " + std::to_string(dht.splitlevel()),
           "splitlevel " + std::to_string(dht.splitlevel() + 1));
  std::stringstream in(corrupted);
  EXPECT_THROW((void)load_global_snapshot(in), Error);
}

TEST(InvariantChecker, CreationFlowFlagControlsG5) {
  // Build a state where V is a power of two but counts are not Pmin
  // (legitimate after removals): creation_only=true must reject it,
  // creation_only=false must accept it.
  GlobalDht dht(cfg(8, 1, 7));
  const auto snode = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(dht.create_vnode(snode));
  // Removal to V = 4 = 2^2 can leave counts off the G5 fixpoint only
  // for some histories; force a non-fixpoint by removing from V=5.
  dht.remove_vnode(ids[0]);  // V = 5
  dht.remove_vnode(ids[1]);  // V = 4
  EXPECT_NO_THROW(check_invariants(dht, /*creation_only=*/false));
  // After the merge-back the state may or may not sit at the fixpoint;
  // verify the two modes never contradict each other the wrong way:
  bool strict_ok = true;
  try {
    check_invariants(dht, /*creation_only=*/true);
  } catch (const InvariantViolation&) {
    strict_ok = false;
  }
  // If the strict check passed, counts are all Pmin - assert that.
  if (strict_ok) {
    for (const VNodeId id : dht.live_vnodes()) {
      EXPECT_EQ(dht.gpdr().count_of(id), dht.config().pmin);
    }
  }
}

}  // namespace
}  // namespace cobalt::dht
