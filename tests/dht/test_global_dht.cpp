// Unit and property tests for the global approach (section 2).

#include "dht/global_dht.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "dht/invariants.hpp"

namespace cobalt::dht {
namespace {

Config make_config(std::uint64_t pmin, std::uint64_t seed = 1) {
  Config c;
  c.pmin = pmin;
  c.seed = seed;
  return c;
}

TEST(GlobalDht, BootstrapGivesFirstVnodeTheWholeRange) {
  GlobalDht dht(make_config(8));
  const SNodeId s = dht.add_snode();
  const VNodeId v = dht.create_vnode(s);
  EXPECT_EQ(dht.vnode_count(), 1u);
  EXPECT_EQ(dht.gpdr().count_of(v), 8u);
  EXPECT_EQ(dht.splitlevel(), 3u);  // Pmin = 8 partitions = 2^3
  EXPECT_EQ(dht.exact_quota(v), Dyadic::one());
  check_invariants(dht);
}

TEST(GlobalDht, SecondVnodeHalvesTheRange) {
  GlobalDht dht(make_config(8));
  const SNodeId s = dht.add_snode();
  const VNodeId v0 = dht.create_vnode(s);
  const VNodeId v1 = dht.create_vnode(s);
  // V = 2 is a power of two: G5 demands both at Pmin after one split.
  EXPECT_EQ(dht.gpdr().count_of(v0), 8u);
  EXPECT_EQ(dht.gpdr().count_of(v1), 8u);
  EXPECT_EQ(dht.splitlevel(), 4u);
  EXPECT_EQ(dht.exact_quota(v0), Dyadic::one_over_pow2(1));
  EXPECT_EQ(dht.exact_quota(v1), Dyadic::one_over_pow2(1));
  check_invariants(dht);
}

TEST(GlobalDht, InvariantsHoldThroughGrowth) {
  GlobalDht dht(make_config(4));
  const SNodeId s = dht.add_snode();
  for (int i = 0; i < 70; ++i) {
    dht.create_vnode(s);
    ASSERT_NO_THROW(check_invariants(dht)) << "after vnode " << i + 1;
  }
}

TEST(GlobalDht, PerfectBalanceAtPowersOfTwo) {
  GlobalDht dht(make_config(16));
  const SNodeId s = dht.add_snode();
  for (int i = 1; i <= 64; ++i) {
    dht.create_vnode(s);
    if (std::has_single_bit(static_cast<unsigned>(i))) {
      EXPECT_NEAR(dht.sigma_qv(), 0.0, 1e-12) << "V = " << i;
    }
  }
}

TEST(GlobalDht, SigmaQvEqualsSigmaPv) {
  // Section 2.4: with equal-size partitions the two metrics coincide.
  GlobalDht dht(make_config(8));
  const SNodeId s = dht.add_snode();
  for (int i = 0; i < 23; ++i) dht.create_vnode(s);
  EXPECT_NEAR(dht.sigma_qv(), dht.sigma_pv(), 1e-12);
}

TEST(GlobalDht, SplitLevelFollowsVnodeCount) {
  GlobalDht dht(make_config(8));
  const SNodeId s = dht.add_snode();
  // P must always be the smallest power of two >= V * Pmin.
  for (int i = 1; i <= 40; ++i) {
    dht.create_vnode(s);
    const std::uint64_t p = dht.gpdr().total();
    EXPECT_GE(p, static_cast<std::uint64_t>(i) * 8u);
    EXPECT_LT(p / 2, static_cast<std::uint64_t>(i) * 8u);
    EXPECT_EQ(p, std::uint64_t{1} << dht.splitlevel());
  }
}

TEST(GlobalDht, LookupFindsOwningVnode) {
  GlobalDht dht(make_config(8, 99));
  const SNodeId s = dht.add_snode();
  for (int i = 0; i < 9; ++i) dht.create_vnode(s);
  Xoshiro256 rng(5);
  for (int probe = 0; probe < 1000; ++probe) {
    const HashIndex r = rng.next();
    const auto hit = dht.lookup(r);
    EXPECT_TRUE(hit.partition.contains(r));
    const VNode& v = dht.vnode(hit.owner);
    EXPECT_TRUE(v.alive);
  }
}

TEST(GlobalDht, SnodeHostsItsVnodes) {
  GlobalDht dht(make_config(4));
  const SNodeId s0 = dht.add_snode(1.0);
  const SNodeId s1 = dht.add_snode(2.0);
  const VNodeId a = dht.create_vnode(s0);
  const VNodeId b = dht.create_vnode(s1);
  const VNodeId c = dht.create_vnode(s1);
  EXPECT_EQ(dht.vnode(a).snode, s0);
  EXPECT_EQ(dht.snode(s1).vnodes, (std::vector<VNodeId>{b, c}));
  EXPECT_DOUBLE_EQ(dht.snode(s1).capacity, 2.0);
}

TEST(GlobalDht, RemoveVnodeRedistributesAndMerges) {
  GlobalDht dht(make_config(8));
  const SNodeId s = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 9; ++i) ids.push_back(dht.create_vnode(s));
  const std::uint64_t p_before = dht.gpdr().total();
  dht.remove_vnode(ids[4]);
  EXPECT_EQ(dht.vnode_count(), 8u);
  EXPECT_FALSE(dht.vnode(ids[4]).alive);
  // Back at V = 8: the supply must have merged back down.
  EXPECT_EQ(dht.gpdr().total(), p_before / 2);
  check_invariants(dht, /*creation_only=*/false);
  // After merging to V = 2^k the distribution is perfectly uniform again.
  EXPECT_NEAR(dht.sigma_qv(), 0.0, 1e-12);
}

TEST(GlobalDht, RemoveManyVnodesKeepsInvariants) {
  GlobalDht dht(make_config(4, 3));
  const SNodeId s = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 33; ++i) ids.push_back(dht.create_vnode(s));
  // Remove every other vnode.
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    dht.remove_vnode(ids[i]);
    ASSERT_NO_THROW(check_invariants(dht, /*creation_only=*/false))
        << "after removing " << i;
  }
  EXPECT_EQ(dht.vnode_count(), 16u);
}

namespace {

/// Counts mutation events (drain-path coverage: remove_vnode must
/// announce every transfer of the drain and every buddy merge of
/// merge_everything to its observer).
class EventCounter final : public MutationObserver {
 public:
  void on_transfer(const Partition&, VNodeId from, VNodeId /*to*/) override {
    ++transfers;
    last_transfer_from = from;
  }
  void on_split(const Partition&, VNodeId) override { ++splits; }
  void on_merge(const Partition& parent, VNodeId) override {
    ++merges;
    merged_level = parent.level();
  }

  std::size_t transfers = 0;
  std::size_t splits = 0;
  std::size_t merges = 0;
  VNodeId last_transfer_from = kInvalidVNode;
  unsigned merged_level = 0;
};

}  // namespace

TEST(GlobalDht, RemovalDrainAnnouncesTransfersAndMerges) {
  // V = 9 -> 8 crosses a power of two downward: the drain must emit
  // one transfer per partition the departing vnode held, then
  // merge_everything must emit one merge per surviving buddy pair.
  GlobalDht dht(make_config(8));
  const SNodeId s = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 9; ++i) ids.push_back(dht.create_vnode(s));

  EventCounter events;
  dht.set_observer(&events);
  const std::uint64_t held = dht.gpdr().count_of(ids[4]);
  const std::uint64_t p_before = dht.gpdr().total();
  const unsigned level_before = dht.splitlevel();
  dht.remove_vnode(ids[4]);
  dht.set_observer(nullptr);

  EXPECT_GE(events.transfers, held);  // drain + pairwise rebalance
  EXPECT_EQ(events.merges, p_before / 2);
  EXPECT_EQ(events.merged_level, level_before - 1);
  EXPECT_EQ(dht.splitlevel(), level_before - 1);
  EXPECT_EQ(events.splits, 0u);
  check_invariants(dht, /*creation_only=*/false);
}

TEST(GlobalDht, DrainedVnodeHoldsNothingAndSurvivorsCoverTheRange) {
  GlobalDht dht(make_config(4, 11));
  const SNodeId s = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(dht.create_vnode(s));
  dht.remove_vnode(ids[2]);
  EXPECT_EQ(dht.exact_quota(ids[2]).to_double(), 0.0);
  EXPECT_TRUE(dht.vnode(ids[2]).partitions.empty());
  Dyadic total;
  for (const VNodeId id : dht.live_vnodes()) total += dht.exact_quota(id);
  EXPECT_DOUBLE_EQ(total.to_double(), 1.0);
}

TEST(GlobalDht, RemoveLastVnodeRejected) {
  GlobalDht dht(make_config(4));
  const SNodeId s = dht.add_snode();
  const VNodeId v = dht.create_vnode(s);
  EXPECT_THROW((void)dht.remove_vnode(v), InvalidArgument);
}

TEST(GlobalDht, RemoveDeadVnodeRejected) {
  GlobalDht dht(make_config(4));
  const SNodeId s = dht.add_snode();
  const VNodeId v0 = dht.create_vnode(s);
  dht.create_vnode(s);
  dht.create_vnode(s);
  dht.remove_vnode(v0);
  EXPECT_THROW((void)dht.remove_vnode(v0), InvalidArgument);
}

TEST(GlobalDht, GrowShrinkGrowRoundTrip) {
  GlobalDht dht(make_config(8, 17));
  const SNodeId s = dht.add_snode();
  std::vector<VNodeId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(dht.create_vnode(s));
  for (int i = 19; i >= 8; --i) {
    dht.remove_vnode(ids[static_cast<std::size_t>(i)]);
  }
  check_invariants(dht, /*creation_only=*/false);
  for (int i = 0; i < 12; ++i) dht.create_vnode(s);
  check_invariants(dht, /*creation_only=*/false);
  EXPECT_EQ(dht.vnode_count(), 20u);
}

TEST(GlobalDht, InvalidConfigRejected) {
  Config c;
  c.pmin = 12;  // not a power of two
  EXPECT_THROW(GlobalDht dht(c), InvalidArgument);
}

TEST(GlobalDht, CreateOnUnknownSnodeRejected) {
  GlobalDht dht(make_config(4));
  EXPECT_THROW((void)dht.create_vnode(3), InvalidArgument);
}

// Parameterized sweep: the quality metric at V = 1024 improves as Pmin
// grows (the paper's figure 4 zone-1 behaviour, global flavour), and
// invariants hold for every Pmin.
class GlobalSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobalSweep, InvariantsAndQualityAtScale) {
  GlobalDht dht(make_config(GetParam(), 11));
  const SNodeId s = dht.add_snode();
  for (int i = 0; i < 300; ++i) dht.create_vnode(s);
  check_invariants(dht);
  // Counts live in [Pmin, Pmax] (G4), so sigma/mean < 1/2 always; the
  // greedy algorithm is far tighter, keeping counts within ~2 of each
  // other, i.e. sigma-bar <~ 2/Pmin.
  EXPECT_LE(dht.sigma_qv(), 2.0 / static_cast<double>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(PminSweep, GlobalSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u));

}  // namespace
}  // namespace cobalt::dht
