// Unit and property tests for the local approach (section 3).

#include "dht/local_dht.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "dht/global_dht.hpp"
#include "dht/invariants.hpp"

namespace cobalt::dht {
namespace {

Config make_config(std::uint64_t pmin, std::uint64_t vmin,
                   std::uint64_t seed = 1) {
  Config c;
  c.pmin = pmin;
  c.vmin = vmin;
  c.seed = seed;
  return c;
}

/// Grows a DHT by `count` vnodes on one snode.
void grow(LocalDht& dht, SNodeId s, int count) {
  for (int i = 0; i < count; ++i) dht.create_vnode(s);
}

TEST(LocalDht, BootstrapCreatesGroupZero) {
  LocalDht dht(make_config(8, 4));
  const SNodeId s = dht.add_snode();
  const VNodeId v = dht.create_vnode(s);
  EXPECT_EQ(dht.group_count(), 1u);
  const Group& g0 = dht.group(dht.group_of(v));
  EXPECT_EQ(g0.id, GroupId::root());
  EXPECT_EQ(g0.members.size(), 1u);
  EXPECT_EQ(g0.lpdr.count_of(v), 8u);
  EXPECT_EQ(dht.exact_group_quota(dht.group_of(v)), Dyadic::one());
  check_invariants(dht);
}

TEST(LocalDht, SingleGroupPhaseMatchesGlobalApproach) {
  // Section 4.1.1: while 1 <= V <= Vmax there is one sole group, and
  // the evolution matches the global approach for the same Pmin.
  const std::uint64_t pmin = 8;
  const std::uint64_t vmin = 8;
  LocalDht local(make_config(pmin, vmin, 5));
  GlobalDht global([&] {
    Config c;
    c.pmin = pmin;
    c.seed = 5;
    return c;
  }());
  const SNodeId sl = local.add_snode();
  const SNodeId sg = global.add_snode();
  for (std::uint64_t i = 0; i < 2 * vmin; ++i) {
    local.create_vnode(sl);
    global.create_vnode(sg);
    ASSERT_EQ(local.group_count(), 1u);
    EXPECT_NEAR(local.sigma_qv(), global.sigma_qv(), 1e-12)
        << "V = " << i + 1;
  }
}

TEST(LocalDht, GroupSplitsWhenFull) {
  LocalDht dht(make_config(4, 4, 7));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 8);  // Vmax = 8: group 0 exactly full
  EXPECT_EQ(dht.group_count(), 1u);
  dht.create_vnode(s);  // 9th vnode forces the split
  EXPECT_EQ(dht.group_count(), 2u);
  check_invariants(dht);

  // The two children carry the figure-3 identifiers "0" and "1".
  std::set<std::string> ids;
  for (const auto slot : dht.live_groups()) {
    ids.insert(dht.group(slot).id.to_string());
  }
  EXPECT_EQ(ids, (std::set<std::string>{"0", "1"}));
}

TEST(LocalDht, SplitChildrenHaveVminMembersPlusNewcomer) {
  LocalDht dht(make_config(4, 4, 7));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 9);
  std::multiset<std::size_t> sizes;
  for (const auto slot : dht.live_groups()) {
    sizes.insert(dht.group(slot).members.size());
  }
  // One child kept Vmin = 4 members, the other received the newcomer.
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{4, 5}));
}

TEST(LocalDht, SiblingGroupsShareTheParentQuota) {
  LocalDht dht(make_config(4, 4, 21));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 9);
  const auto slots = dht.live_groups();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(dht.exact_group_quota(slots[0]), Dyadic::one_over_pow2(1));
  EXPECT_EQ(dht.exact_group_quota(slots[1]), Dyadic::one_over_pow2(1));
}

TEST(LocalDht, InvariantsHoldThroughDeepGrowth) {
  LocalDht dht(make_config(4, 4, 3));
  const SNodeId s = dht.add_snode();
  for (int i = 0; i < 200; ++i) {
    dht.create_vnode(s);
    ASSERT_NO_THROW(check_invariants(dht)) << "after vnode " << i + 1;
  }
  EXPECT_GT(dht.group_count(), 8u);
}

TEST(LocalDht, GroupQuotasAlwaysSumToOne) {
  LocalDht dht(make_config(8, 8, 13));
  const SNodeId s = dht.add_snode();
  for (int i = 0; i < 150; ++i) {
    dht.create_vnode(s);
    Dyadic sum;
    for (const auto slot : dht.live_groups()) {
      sum += dht.exact_group_quota(slot);
    }
    ASSERT_EQ(sum, Dyadic::one()) << "after vnode " << i + 1;
  }
}

TEST(LocalDht, IdealGroupCountDoublesAtVmaxBoundaries) {
  LocalDht dht(make_config(32, 32));
  EXPECT_EQ(dht.ideal_group_count(1), 1u);
  EXPECT_EQ(dht.ideal_group_count(64), 1u);
  EXPECT_EQ(dht.ideal_group_count(65), 2u);
  EXPECT_EQ(dht.ideal_group_count(128), 2u);
  EXPECT_EQ(dht.ideal_group_count(129), 4u);
  EXPECT_EQ(dht.ideal_group_count(1024), 16u);
}

TEST(LocalDht, LookupIsConsistentWithMembership) {
  LocalDht dht(make_config(8, 4, 17));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 40);
  Xoshiro256 rng(23);
  for (int probe = 0; probe < 1000; ++probe) {
    const HashIndex r = rng.next();
    const auto hit = dht.lookup(r);
    EXPECT_TRUE(hit.partition.contains(r));
    const std::uint32_t slot = dht.group_of(hit.owner);
    EXPECT_TRUE(dht.group(slot).lpdr.contains(hit.owner));
  }
}

TEST(LocalDht, SigmaQgIsZeroWithOneGroup) {
  LocalDht dht(make_config(8, 8));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 10);
  ASSERT_EQ(dht.group_count(), 1u);
  EXPECT_NEAR(dht.sigma_qg(), 0.0, 1e-12);
}

TEST(LocalDht, RemoveVnodeWithinRoomyGroup) {
  LocalDht dht(make_config(8, 8, 29));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 12);  // single group, 12 members (Vmin=8 < 12 < Vmax=16)
  const VNodeId victim = dht.live_vnodes()[5];
  dht.remove_vnode(victim);
  EXPECT_EQ(dht.vnode_count(), 11u);
  EXPECT_FALSE(dht.vnode(victim).alive);
  check_invariants(dht, /*creation_only=*/false);
}

TEST(LocalDht, RemoveVnodeTriggersSiblingMerge) {
  LocalDht dht(make_config(4, 4, 31));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 9);  // two sibling groups of sizes {4, 5}
  ASSERT_EQ(dht.group_count(), 2u);
  // Remove a member of the Vmin-sized group: forces the sibling merge.
  std::uint32_t small_slot = 0;
  for (const auto slot : dht.live_groups()) {
    if (dht.group(slot).members.size() == 4) small_slot = slot;
  }
  const VNodeId victim = dht.group(small_slot).members.front();
  dht.remove_vnode(victim);
  EXPECT_EQ(dht.group_count(), 1u);
  EXPECT_EQ(dht.vnode_count(), 8u);
  check_invariants(dht, /*creation_only=*/false);
}

TEST(LocalDht, RemoveUnsupportedWhenSiblingSplitFurther) {
  // Find (across seeds) a topology where some Vmin-sized group's
  // sibling has itself split further: removal from that group cannot
  // merge and must raise UnsupportedTopology, leaving the DHT intact.
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    LocalDht dht(make_config(4, 4, seed));
    const SNodeId s = dht.add_snode();
    grow(dht, s, 80);
    check_invariants(dht);

    for (const auto slot : dht.live_groups()) {
      const Group& g = dht.group(slot);
      if (g.members.size() != 4) continue;
      if (g.id.depth() < 1) continue;
      bool sibling_alive = false;
      for (const auto other : dht.live_groups()) {
        if (dht.group(other).id == g.id.sibling()) sibling_alive = true;
      }
      if (sibling_alive) continue;
      // Found the target topology: the removal must be refused without
      // corrupting any state.
      EXPECT_THROW((void)dht.remove_vnode(g.members.front()),
                   UnsupportedTopology);
      check_invariants(dht, /*creation_only=*/false);
      EXPECT_EQ(dht.vnode_count(), 80u);
      return;
    }
  }
  FAIL() << "no seed in 1..64 produced a Vmin-group with a split sibling";
}

TEST(LocalDht, RemoveLastVnodeRejected) {
  LocalDht dht(make_config(4, 4));
  const SNodeId s = dht.add_snode();
  const VNodeId v = dht.create_vnode(s);
  EXPECT_THROW((void)dht.remove_vnode(v), InvalidArgument);
}

TEST(LocalDht, GrowShrinkWithinGroupRoundTrip) {
  LocalDht dht(make_config(8, 16, 53));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 20);  // single group (Vmax = 32)
  std::vector<VNodeId> ids = dht.live_vnodes();
  for (int i = 0; i < 8; ++i) {
    dht.remove_vnode(ids[static_cast<std::size_t>(i)]);
    ASSERT_NO_THROW(check_invariants(dht, /*creation_only=*/false));
  }
  grow(dht, s, 8);
  EXPECT_EQ(dht.vnode_count(), 20u);
  check_invariants(dht, /*creation_only=*/false);
}

TEST(LocalDht, VminLargerThanVnodeCountBehavesGlobally) {
  // With Vmin = 512 and up to 1024 vnodes there is only ever one group
  // (the paper's fig. 6 note on Vmin = 512).
  LocalDht dht(make_config(8, 512, 61));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 300);
  EXPECT_EQ(dht.group_count(), 1u);
  check_invariants(dht);
}

// Parameterized grid over (Pmin, Vmin): invariants after a 150-vnode
// growth, for every combination.
class LocalGrid
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(LocalGrid, InvariantsAtScale) {
  const auto [pmin, vmin] = GetParam();
  LocalDht dht(make_config(pmin, vmin, pmin * 1000 + vmin));
  const SNodeId s = dht.add_snode();
  grow(dht, s, 150);
  check_invariants(dht);
  // Quality sanity: the relative deviation stays below 100%.
  EXPECT_LT(dht.sigma_qv(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    PminVminGrid, LocalGrid,
    ::testing::Combine(::testing::Values(2u, 4u, 16u, 64u),
                       ::testing::Values(2u, 4u, 16u, 64u)));

}  // namespace
}  // namespace cobalt::dht
