// Linter fixture: the same RAII vocabulary as lock_order_inversion.cpp
// but acquired in the documented order, plus a REQUIRES-seeded body -
// scripts/check_lock_order.py --fixture must ACCEPT this file. Never
// compiled; it keeps the linter honest in both directions (a linter
// that rejects everything would also "catch" the inversion fixture).

#include "common/thread_annotations.hpp"

namespace {

class Ordered {
 public:
  void membership_then_stats() {
    const cobalt::MaybeUniqueLock backend_lock(backend_mutex_, true);
    const cobalt::MaybeLockGuard acc(accounting_mutex_, true);
  }

  // Sequential (non-nested) holds in a caller-claimed scope: the
  // stripe hold ends before the read-policy hold begins.
  void claimed_body() COBALT_REQUIRES_SHARED(backend_mutex_) {
    {
      const cobalt::MaybeLockGuard acc(accounting_mutex_, true);
    }
    {
      const cobalt::MaybeLockGuard policy(read_policy_mutex_, true);
    }
  }

 private:
  mutable cobalt::SharedMutex backend_mutex_;
  mutable cobalt::Mutex accounting_mutex_;
  mutable cobalt::Mutex read_policy_mutex_;
};

}  // namespace
