// Positive control for the negative-compile harness: disciplined use
// of the annotated wrappers and the ShardIndex scoped-capability
// surface must compile cleanly under clang -Wthread-safety -Werror.
//
// If this target fails to build, the WILL_FAIL fixtures prove nothing
// (any breakage would make them "fail" too), so the harness asserts
// this one builds before trusting the others.

#include <cstdint>

#include "common/thread_annotations.hpp"
#include "kv/shard_index.hpp"

namespace {

class Counter {
 public:
  void bump() {
    const cobalt::MutexLock lock(mutex_);
    ++value_;
  }

  int read() {
    const cobalt::MutexLock lock(mutex_);
    return value_;
  }

 private:
  cobalt::Mutex mutex_;
  int value_ COBALT_GUARDED_BY(mutex_) = 0;
};

// The repo's own scoped types: a bulk read under structure-shared +
// all-stripes-shared, exactly like the store's bulk accessors.
std::uint64_t count_all(const cobalt::kv::ShardIndex& index) {
  const cobalt::kv::ShardIndex::StructureSharedLock structure(index);
  const cobalt::kv::ShardIndex::AllStripesSharedLock stripes(index);
  return index.count_range(0, cobalt::HashSpace::kMaxIndex);
}

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  const cobalt::kv::ShardIndex index;
  return counter.read() + static_cast<int>(count_all(index));
}
