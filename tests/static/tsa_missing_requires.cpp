// Negative-compile fixture: calling a REQUIRES-annotated helper
// without holding the capability it names.
//
// This file must FAIL to compile under clang with -Wthread-safety
// -Werror (the ctest entry building it is marked WILL_FAIL). It pins
// the other half of the contract tsa_unguarded_field.cpp covers: not
// just guarded fields, but lock-assuming helpers must be unreachable
// without their claimed hold.

#include "common/thread_annotations.hpp"

namespace {

class Ledger {
 public:
  // Missing hold: calling total_locked() here must trip the analysis.
  long total_unlocked() { return total_locked(); }

  long total_locked() COBALT_REQUIRES(mutex_) { return total_; }

  void add(long amount) {
    const cobalt::MutexLock lock(mutex_);
    total_ += amount;
  }

 private:
  cobalt::Mutex mutex_;
  long total_ COBALT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  ledger.add(1);
  return static_cast<int>(ledger.total_unlocked());
}
