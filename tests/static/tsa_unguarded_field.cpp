// Negative-compile fixture: mutating a GUARDED_BY field with no hold.
//
// This file must FAIL to compile under clang with -Wthread-safety
// -Werror (the ctest entry building it is marked WILL_FAIL). If it
// ever compiles, the annotation plumbing in
// common/thread_annotations.hpp has silently stopped analyzing -
// exactly the regression this harness exists to catch.

#include "common/thread_annotations.hpp"

namespace {

class Counter {
 public:
  // No lock taken: writing value_ here must trip the analysis.
  void bump_unlocked() { ++value_; }

  int read_locked() {
    const cobalt::MutexLock lock(mutex_);
    return value_;
  }

 private:
  cobalt::Mutex mutex_;
  int value_ COBALT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump_unlocked();
  return counter.read_locked();
}
