// Linter fixture: a seeded acquisition-order inversion.
//
// Never compiled - scripts/check_lock_order.py --fixture must REJECT
// this file (the ctest entry is marked WILL_FAIL). It acquires the
// accounting lock first and the backend lock second, the inverse of
// the documented DAG (backend -> accounting -> structure -> stripes),
// using the store's own RAII vocabulary so the linter exercises the
// same patterns it scans in src/.

#include "common/thread_annotations.hpp"

namespace {

class Inverted {
 public:
  void stats_then_membership() {
    const cobalt::MaybeLockGuard acc(accounting_mutex_, true);
    // Inversion: backend must be outermost.
    const cobalt::MaybeSharedLock backend_lock(backend_mutex_, true);
  }

 private:
  mutable cobalt::SharedMutex backend_mutex_;
  mutable cobalt::Mutex accounting_mutex_;
};

}  // namespace
