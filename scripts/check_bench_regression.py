#!/usr/bin/env python3
"""Advisory store hot-path regression gate (the nightly-bench step).

Compares a fresh google-benchmark JSON run of the store hot-path
family (micro_ops --json output: {"benchmarks": [{"name", "real_time",
...}]}) against the checked-in baseline BENCH_store_hotpath.json
("after" map: bench/scheme -> ns). A benchmark slower than
--threshold x its baseline (default 1.3) prints a warning (GitHub
annotation format when running in Actions).

Advisory by design: nightly runners are shared and noisy, and the
baseline was recorded on the 1-core CI container - the gate surfaces
trends, it does not fail the build. Pass --strict to exit nonzero on
regressions instead (for local use on a quiet machine).

Regenerating the baseline after an intentional perf change is
documented in docs/BENCHMARKS.md (reduced scale, --checks=off
harnesses are unrelated - micro_ops has no checks; just re-run the
recorded command and splice the fresh real_time values into "after").

Usage:
  check_bench_regression.py <fresh.json> [--baseline=BENCH_store_hotpath.json]
      [--threshold=1.3] [--strict]
"""

import json
import sys


def main(argv):
    fresh_path = None
    baseline_path = "BENCH_store_hotpath.json"
    threshold = 1.3
    strict = False
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        elif arg.startswith("--"):
            sys.exit(f"unknown option: {arg}")
        else:
            fresh_path = arg
    if fresh_path is None:
        sys.exit(__doc__)

    with open(fresh_path) as f:
        fresh = {
            b["name"]: b["real_time"]
            for b in json.load(f).get("benchmarks", [])
        }
    with open(baseline_path) as f:
        baseline = json.load(f)["after"]

    if not fresh:
        # The gate's own total-failure mode (filter drift, renamed
        # family) must be at least as loud as a single regression.
        print(f"::warning::bench regression gate: no benchmarks parsed "
              f"from {fresh_path} - the store hot-path family is not "
              f"being tracked")
        return 1 if strict else 0

    regressions = []
    missing = []
    for name, base_ns in sorted(baseline.items()):
        ns = fresh.get(name)
        if ns is None:
            missing.append(name)
            continue
        ratio = ns / base_ns
        marker = " <-- REGRESSION" if ratio > threshold else ""
        print(f"{name}: {ns:.1f} ns vs baseline {base_ns:.1f} ns "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            regressions.append((name, ratio))

    for name in missing:
        print(f"::warning::bench regression gate: {name} missing from "
              f"the fresh run")
    for name, ratio in regressions:
        print(f"::warning::store hot path regression (advisory): {name} "
              f"is {ratio:.2f}x its checked-in baseline "
              f"(threshold {threshold}x)")

    if regressions:
        print(f"check_bench_regression: {len(regressions)} advisory "
              f"regression(s) above {threshold}x")
        return 1 if strict else 0
    print("check_bench_regression: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
