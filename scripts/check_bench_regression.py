#!/usr/bin/env python3
"""Advisory store hot-path regression gate (the nightly-bench step).

Compares a fresh google-benchmark JSON run of the store hot-path
family (micro_ops --json output: {"benchmarks": [{"name", "real_time",
...}]}) against the checked-in baseline BENCH_store_hotpath.json
("after" map: bench/scheme[/threads:T] -> ns). A benchmark slower than
--threshold x its baseline (default 1.3) prints a warning (GitHub
annotation format when running in Actions).

The threads dimension: bench cells carry a /threads:T suffix (the
store's repair pool size, or the driver thread count for the contended
mix). Cells are only ever compared at equal T - the exact-name match
guarantees it, and a baseline name without a suffix is treated as its
family's threads:1 cell so the gate stays meaningful across the
naming migration. The fresh run's thread-scaling curves are printed
as an informational summary (speedup of each threads:T cell over its
own threads:1 cell); they are never gated, because the runner's core
count decides what scaling is even achievable.

Advisory by design: nightly runners are shared and noisy, and the
baseline was recorded on the 1-core CI container - the gate surfaces
trends, it does not fail the build. Pass --strict to exit nonzero on
regressions instead (for local use on a quiet machine).

Regenerating the baseline after an intentional perf change is
documented in docs/BENCHMARKS.md (reduced scale, --checks=off
harnesses are unrelated - micro_ops has no checks; just re-run the
recorded command and splice the fresh real_time values into "after").

Usage:
  check_bench_regression.py <fresh.json> [--baseline=BENCH_store_hotpath.json]
      [--threshold=1.3] [--strict]
"""

import json
import re
import sys

_THREADS_RE = re.compile(r"^(?P<base>.*)/threads:(?P<t>\d+)$")


def split_threads(name):
    """-> (base name, thread count); no suffix reads as threads:1."""
    m = _THREADS_RE.match(name)
    if m:
        return m.group("base"), int(m.group("t"))
    return name, 1


def scaling_summary(fresh):
    """Prints each family's fresh thread-scaling curve (informational)."""
    families = {}
    for name, ns in fresh.items():
        base, threads = split_threads(name)
        families.setdefault(base, {})[threads] = ns
    lines = []
    for base in sorted(families):
        cells = families[base]
        if len(cells) < 2 or 1 not in cells:
            continue
        curve = ", ".join(
            f"{t}T {cells[1] / cells[t]:.2f}x"
            for t in sorted(cells)
            if t != 1
        )
        lines.append(f"  {base}: {curve}")
    if lines:
        print("thread scaling vs the same run's threads:1 cells "
              "(informational, runner-core-bound):")
        for line in lines:
            print(line)


def main(argv):
    fresh_path = None
    baseline_path = "BENCH_store_hotpath.json"
    threshold = 1.3
    strict = False
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True
        elif arg.startswith("--"):
            sys.exit(f"unknown option: {arg}")
        else:
            fresh_path = arg
    if fresh_path is None:
        sys.exit(__doc__)

    with open(fresh_path) as f:
        fresh = {
            b["name"]: b["real_time"]
            for b in json.load(f).get("benchmarks", [])
        }
    with open(baseline_path) as f:
        baseline = json.load(f)["after"]

    if not fresh:
        # The gate's own total-failure mode (filter drift, renamed
        # family) must be at least as loud as a single regression.
        print(f"::warning::bench regression gate: no benchmarks parsed "
              f"from {fresh_path} - the store hot-path family is not "
              f"being tracked")
        return 1 if strict else 0

    regressions = []
    missing = []
    for name, base_ns in sorted(baseline.items()):
        ns = fresh.get(name)
        if ns is None and split_threads(name)[1] == 1:
            # A pre-threads-axis baseline cell is its family's
            # single-threaded measurement.
            ns = fresh.get(f"{name}/threads:1")
        if ns is None:
            missing.append(name)
            continue
        ratio = ns / base_ns
        marker = " <-- REGRESSION" if ratio > threshold else ""
        print(f"{name}: {ns:.1f} ns vs baseline {base_ns:.1f} ns "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            regressions.append((name, ratio))

    for name in missing:
        print(f"::warning::bench regression gate: {name} missing from "
              f"the fresh run")
    for name, ratio in regressions:
        print(f"::warning::store hot path regression (advisory): {name} "
              f"is {ratio:.2f}x its checked-in baseline "
              f"(threshold {threshold}x)")

    scaling_summary(fresh)

    if regressions:
        print(f"check_bench_regression: {len(regressions)} advisory "
              f"regression(s) above {threshold}x")
        return 1 if strict else 0
    print("check_bench_regression: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
