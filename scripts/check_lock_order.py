#!/usr/bin/env python3
"""Lock-order linter for the cobalt concurrency layer.

Clang's -Wthread-safety proves *which* lock covers each access; it does
not prove locks are *acquired* in a consistent global order. This
linter enforces the two ordering rules the analysis cannot express:

1. The acquisition-order DAG (docs/ARCHITECTURE.md, "Lock order"):

       backend -> accounting -> structure -> stripes
       backend -> read_policy                 (leaf)

   Within any scope, a RAII acquisition of lock X while a lock H is
   still held is legal only when the DAG orders H before X. Holds are
   tracked lexically per brace scope (the repo acquires exclusively
   through scoped RAII types, so lexical scope equals hold duration),
   and COBALT_REQUIRES / COBALT_REQUIRES_SHARED attributes seed the
   holds a function's callers guarantee.

2. The ascending-stripe-span rule: multi-stripe holds are taken only
   by ShardIndex's StripeSpanLock, whose constructor must walk the
   stripe table in ascending order (the shared deadlock-free order),
   and no file outside shard_index.hpp may construct a StripeSpanLock
   directly - the store goes through the scoped shard-span types.

It also pins the raw-locking surface: calls to .lock() / .unlock() /
.lock_shared() etc. and the std locking vocabulary (std::mutex,
std::lock_guard, ...) may appear only in the annotated wrapper header
(common/thread_annotations.hpp) and in the stripe-span runtime core
(kv/shard_index.hpp); everywhere else the wrappers are mandatory, so
every acquisition stays visible to this linter and to the analysis.

Finally, the DAG above is cross-checked against the "Lock order" line
of docs/ARCHITECTURE.md, so this file and the documentation cannot
drift apart silently.

Usage:
    scripts/check_lock_order.py              # lint src/ + the doc line
    scripts/check_lock_order.py --fixture F  # lint one file (tests)

Exit status 0 when clean, 1 with findings on stderr otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# --- the acquisition-order DAG --------------------------------------

# allowed_after[H] = locks that may be acquired while H is held.
ALLOWED_AFTER = {
    "backend": {"accounting", "structure", "stripes", "read_policy"},
    "accounting": {"structure", "stripes"},
    "structure": {"stripes"},
    "stripes": set(),
    "read_policy": set(),
}

# Mutex-expression tokens -> DAG node (REQUIRES attributes and Maybe*
# constructor arguments).
TOKEN_LEVEL = {
    "backend_mutex_": "backend",
    "accounting_mutex_": "accounting",
    "structure_mutex_": "structure",
    "stripes_cap_": "stripes",
    "read_policy_mutex_": "read_policy",
}

# Scoped RAII types whose *type name* names the lock it acquires.
TYPE_LEVEL = {
    "StructureSharedLock": "structure",
    "StructureExclusiveLock": "structure",
    "ShardSpanLock": "stripes",
    "ShardSpanSharedLock": "stripes",
    "StripeSharedLock": "stripes",
    "AllStripesSharedLock": "stripes",
    "StripeSpanLock": "stripes",
}

# Scoped RAII types whose first constructor argument names the mutex.
ARG_TYPES = ("MaybeLockGuard", "MaybeUniqueLock", "MaybeSharedLock",
             "MutexLock", "UniqueLock", "SharedLock")

ACQ_TYPE_RE = re.compile(
    r"\b(?:ShardIndex::)?(" + "|".join(TYPE_LEVEL) + r")\s+\w+\s*[({]")
ACQ_ARG_RE = re.compile(
    r"\b(" + "|".join(ARG_TYPES) + r")\s+\w+\s*[({]\s*([A-Za-z_][\w.>-]*)")
REQUIRES_RE = re.compile(
    r"\bCOBALT_REQUIRES(?:_SHARED)?\s*\(([^()]*)\)")

RAW_CALL_RE = re.compile(
    r"\.\s*(?:try_)?(?:lock|unlock)(?:_shared)?\s*\(")
STD_LOCK_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|scoped_lock|unique_lock|"
    r"shared_lock)\b")

# Files allowed to touch raw locking primitives: the wrapper header
# defines them, the shard index implements the stripe-span core.
RAW_LOCK_FILES = {"src/common/thread_annotations.hpp",
                  "src/kv/shard_index.hpp"}


def strip_comments(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def statement_acquisitions(stmt: str):
    """Locks a statement acquires, in textual order: [(node, what)]."""
    found = []
    for m in ACQ_TYPE_RE.finditer(stmt):
        found.append((m.start(), TYPE_LEVEL[m.group(1)], m.group(1)))
    for m in ACQ_ARG_RE.finditer(stmt):
        arg = m.group(2).split(".")[-1].split(">")[-1]
        node = TOKEN_LEVEL.get(arg)
        if node is not None:
            found.append((m.start(), node, f"{m.group(1)}({arg})"))
    found.sort()
    return [(node, what) for _, node, what in found]


def statement_requires(stmt: str):
    """DAG nodes named by REQUIRES attributes in a signature."""
    nodes = []
    for m in REQUIRES_RE.finditer(stmt):
        for piece in m.group(1).split(","):
            token = piece.strip().split(".")[-1].split(">")[-1]
            node = TOKEN_LEVEL.get(token)
            if node is not None and node not in nodes:
                nodes.append(node)
    return nodes


def check_order(path: pathlib.Path, text: str, findings: list) -> None:
    """Walks brace scopes tracking RAII holds against the DAG."""
    code = strip_comments(text)
    holds = []  # [(depth, node, what, line)]
    depth = 0
    stmt_start = 0
    line = 1

    def fail_on(new_node: str, what: str, at_line: int) -> None:
        for _, held, held_what, held_line in holds:
            if held == new_node and held_what == what:
                continue
            if new_node not in ALLOWED_AFTER.get(held, set()):
                findings.append(
                    f"{path}:{at_line}: acquires {what} [{new_node}] while "
                    f"holding {held_what} [{held}] (taken at line "
                    f"{held_line}) - order must follow the DAG "
                    "backend -> accounting -> structure -> stripes "
                    "(backend -> read_policy leaf)")

    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            line += 1
        elif c == "{":
            stmt = code[stmt_start:i]
            stmt_line = line - stmt.count("\n")
            depth += 1
            # A signature's REQUIRES claims become holds of the body.
            for node in statement_requires(stmt):
                holds.append((depth, node, f"REQUIRES({node})", stmt_line))
            for node, what in statement_acquisitions(stmt):
                fail_on(node, what, stmt_line)
                holds.append((depth, node, what, stmt_line))
            stmt_start = i + 1
        elif c == "}":
            stmt = code[stmt_start:i]
            stmt_line = line - stmt.count("\n")
            for node, what in statement_acquisitions(stmt):
                fail_on(node, what, stmt_line)
            holds = [h for h in holds if h[0] < depth]
            depth = max(0, depth - 1)
            stmt_start = i + 1
        elif c == ";":
            stmt = code[stmt_start:i]
            stmt_line = line - stmt.count("\n")
            for node, what in statement_acquisitions(stmt):
                fail_on(node, what, stmt_line)
                holds.append((depth, node, what, stmt_line))
            stmt_start = i + 1
        i += 1


def check_raw_surface(rel: str, path: pathlib.Path, text: str,
                      findings: list) -> None:
    if rel in RAW_LOCK_FILES:
        return
    code = strip_comments(text)
    for lineno, line_text in enumerate(code.splitlines(), start=1):
        if RAW_CALL_RE.search(line_text):
            findings.append(
                f"{path}:{lineno}: raw .lock()/.unlock() call outside "
                "the wrapper header / stripe-span core - use the "
                "annotated RAII types from common/thread_annotations.hpp")
        if STD_LOCK_RE.search(line_text):
            findings.append(
                f"{path}:{lineno}: raw std locking primitive outside "
                "common/thread_annotations.hpp - use the annotated "
                "wrappers so the analysis and this linter see it")
        if re.search(r"\bStripeSpanLock\s+\w+\s*[({]", line_text):
            findings.append(
                f"{path}:{lineno}: StripeSpanLock constructed outside "
                "kv/shard_index.hpp - use the scoped shard-span types "
                "(ShardSpanLock / ShardSpanSharedLock / "
                "AllStripesSharedLock)")


def check_ascending_span(findings: list) -> None:
    path = REPO / "src/kv/shard_index.hpp"
    code = strip_comments(path.read_text(encoding="utf-8"))
    if not re.search(
            r"for\s*\(\s*std::size_t\s+s\s*=\s*first_\s*;"
            r"\s*s\s*<=\s*last_\s*;\s*\+\+s\s*\)", code):
        findings.append(
            f"{path}: StripeSpanLock's constructor no longer walks the "
            "stripes ascending (for (std::size_t s = first_; "
            "s <= last_; ++s)) "
            "- the shared ascending order is the deadlock-freedom "
            "argument for multi-stripe holds; restore it or update "
            "this linter *and* docs/ARCHITECTURE.md together")


def check_doc_order(findings: list) -> None:
    path = REPO / "docs/ARCHITECTURE.md"
    text = re.sub(r"\s+", " ", path.read_text(encoding="utf-8"))
    documented = "backend → accounting → structure → stripes"
    if documented not in text:
        findings.append(
            f"{path}: the documented lock order line "
            f"('{documented}') is missing - it must match the DAG "
            "this linter enforces (see ALLOWED_AFTER)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fixture", type=pathlib.Path, default=None,
                        help="lint one file's acquisition order only "
                             "(test fixtures)")
    args = parser.parse_args()

    findings: list = []
    if args.fixture is not None:
        text = args.fixture.read_text(encoding="utf-8")
        check_order(args.fixture, text, findings)
    else:
        for path in sorted((REPO / "src").rglob("*.[ch]pp")):
            rel = path.relative_to(REPO).as_posix()
            text = path.read_text(encoding="utf-8")
            check_order(path, text, findings)
            check_raw_surface(rel, path, text, findings)
        check_ascending_span(findings)
        check_doc_order(findings)

    if findings:
        for f in findings:
            print(f, file=sys.stderr)
        print(f"check_lock_order: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    scope = args.fixture if args.fixture is not None else "src/"
    print(f"check_lock_order: OK ({scope})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
