#!/usr/bin/env bash
# Doc link + drift check (the CI docs job; runnable locally).
#
#   1. Every relative markdown link in README.md and docs/*.md must
#      resolve to an existing file.
#   2. Every bench harness (bench/fig*.cpp, bench/abl*.cpp) must be
#      documented in docs/BENCHMARKS.md.
#   3. Every fig*/abl* bench name mentioned in README.md or docs/*.md
#      must exist as bench/<name>.cpp (no docs for deleted benches).
#   4. No raw std concurrency primitive outside
#      src/common/thread_annotations.hpp: everything else must use the
#      annotated wrappers, or clang's thread safety analysis (and the
#      lock-order linter) cannot see the acquisition.
#   5. No new raw integer replication parameter in the replicated
#      layers: replication is keyed by placement::ReplicationSpec
#      (factor + spread policy), so a bare "std::size_t replication"
#      parameter reintroduces the pre-topology API. Intentional legacy
#      wrappers carry a "raw-k-ok" marker comment.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1. relative markdown links -------------------------------------
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # ](target) links, minus external URLs and pure anchors.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK: $doc -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" \
             | sed -E 's/^\]\(//; s/\)$//; s/#.*$//' \
             | grep -vE '^https?://' || true)
done

# --- 2. every bench harness is documented ---------------------------
for src in bench/fig*.cpp bench/abl*.cpp; do
  name=$(basename "$src" .cpp)
  if ! grep -q "$name" docs/BENCHMARKS.md; then
    echo "UNDOCUMENTED BENCH: $name missing from docs/BENCHMARKS.md"
    fail=1
  fi
done

# --- 3. every documented bench name exists --------------------------
while IFS= read -r name; do
  if [ ! -e "bench/$name.cpp" ]; then
    echo "STALE DOC REFERENCE: $name has no bench/$name.cpp"
    fail=1
  fi
done < <(grep -ohE '\b(fig|abl)[0-9]+_[a-z0-9_]+' README.md docs/*.md \
           | sort -u)

# --- 4. raw std primitives stay behind the annotated wrappers -------
while IFS= read -r hit; do
  echo "RAW STD PRIMITIVE: $hit"
  echo "  (use the annotated wrappers in common/thread_annotations.hpp)"
  fail=1
done < <(grep -rnE \
           'std::(mutex|shared_mutex|condition_variable|lock_guard|unique_lock|shared_lock|scoped_lock)\b' \
           src --include='*.hpp' --include='*.cpp' \
           | grep -v '^src/common/thread_annotations.hpp:' || true)

# --- 5. replication stays keyed by ReplicationSpec ------------------
while IFS= read -r hit; do
  echo "RAW REPLICATION FACTOR: $hit"
  echo "  (take a placement::ReplicationSpec, or mark a deliberate"
  echo "   legacy wrapper with a raw-k-ok comment)"
  fail=1
done < <(grep -rnE \
           'std::size_t (replication|replicas|replication_factor)\b' \
           src/kv src/sim src/cluster --include='*.hpp' \
           | grep -v 'raw-k-ok' || true)

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: ok"
